#include "harness/fence_synth.hh"

#include <algorithm>

#include "base/logging.hh"
#include "harness/decision.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace gam::harness
{

std::string
FenceInsertion::toString() const
{
    return formatString("P%d: %s before instruction %d", tid,
                        isa::fenceName(kind).c_str(), index);
}

litmus::LitmusTest
applyFences(const litmus::LitmusTest &test,
            const std::vector<FenceInsertion> &fences)
{
    litmus::LitmusTest out = test;
    out.name = test.name + "+fences";

    // Insert back-to-front per thread so indices stay valid, fixing up
    // branch targets that jump past an insertion point.
    std::vector<FenceInsertion> sorted = fences;
    std::sort(sorted.begin(), sorted.end(),
              [](const FenceInsertion &a, const FenceInsertion &b) {
                  return a.tid != b.tid ? a.tid < b.tid
                                        : a.index > b.index;
              });
    for (const FenceInsertion &f : sorted) {
        auto &code = out.threads[size_t(f.tid)].code;
        GAM_ASSERT(f.index >= 0 && f.index <= int(code.size()),
                   "fence insertion out of range");
        for (auto &instr : code) {
            if (instr.isBranch() && instr.imm >= f.index)
                ++instr.imm;
        }
        code.insert(code.begin() + f.index, isa::makeFence(f.kind));
    }
    return out;
}

SynthResult
synthesizeFences(const litmus::LitmusTest &test, model::ModelKind model,
                 int max_fences)
{
    GAM_TRACE_SCOPE("fence_synth");
    SynthResult result;
    // Fold this synthesis into the registry on every return path.
    struct Report
    {
        const SynthResult &r;
        ~Report()
        {
            obs::MetricRegistry &reg = obs::metrics();
            reg.counter("fence_synth.requests").inc();
            reg.counter("fence_synth.queries").inc(r.queriesIssued);
            reg.counter("fence_synth.cache_hits").inc(r.cacheHits);
            reg.counter(r.solved ? "fence_synth.solved"
                                 : "fence_synth.unsolved")
                .inc();
        }
    } reporter{result};

    auto allowed = [&](const litmus::LitmusTest &t) {
        ++result.queriesIssued;
        Query query;
        query.test = &t;
        query.model = model;
        query.engine = EngineSelect::Axiomatic;
        const Decision d = decide(query);
        if (d.cacheHit)
            ++result.cacheHits;
        return d.allowed;
    };

    if (!allowed(test)) {
        result.solved = true; // nothing to do
        return result;
    }

    // Candidate gaps: between consecutive memory instructions of each
    // thread (a fence anywhere else in the gap is equivalent).
    std::vector<std::pair<int, int>> gaps;
    for (size_t tid = 0; tid < test.threads.size(); ++tid) {
        const auto &code = test.threads[tid].code;
        int last_mem = -1;
        for (size_t i = 0; i < code.size(); ++i) {
            if (!code[i].isMem())
                continue;
            if (last_mem >= 0)
                gaps.emplace_back(int(tid), int(i));
            last_mem = int(i);
        }
    }

    constexpr isa::FenceKind kinds[] = {
        isa::FenceKind::LL, isa::FenceKind::LS, isa::FenceKind::SL,
        isa::FenceKind::SS,
    };

    // Breadth-first over insertion-set size: the first hit is minimal.
    std::vector<std::vector<FenceInsertion>> frontier{{}};
    for (int size = 1; size <= max_fences; ++size) {
        std::vector<std::vector<FenceInsertion>> next;
        for (const auto &base : frontier) {
            for (const auto &[tid, index] : gaps) {
                // Grow canonically: only at positions after the last.
                if (!base.empty()
                    && (tid < base.back().tid
                        || (tid == base.back().tid
                            && index <= base.back().index))) {
                    continue;
                }
                for (isa::FenceKind kind : kinds) {
                    auto candidate = base;
                    candidate.push_back({tid, index, kind});
                    if (!allowed(applyFences(test, candidate))) {
                        result.fences = candidate;
                        result.solved = true;
                        return result;
                    }
                    next.push_back(std::move(candidate));
                }
            }
        }
        frontier = std::move(next);
    }
    return result; // unsolved within the bound
}

} // namespace gam::harness
