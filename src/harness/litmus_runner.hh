/**
 * @file
 * Litmus-test driver: runs a test under a model with the appropriate
 * engine (axiomatic checker, operational explorer, or both) and
 * compares against the paper's verdicts.
 */

#ifndef GAM_HARNESS_LITMUS_RUNNER_HH
#define GAM_HARNESS_LITMUS_RUNNER_HH

#include <optional>
#include <string>
#include <vector>

#include "litmus/test.hh"
#include "model/kind.hh"

namespace gam::harness
{

/** Which engine decided a verdict. */
enum class Engine { Axiomatic, Operational };

/** One (test, model, engine) verdict. */
struct LitmusVerdict
{
    std::string test;
    model::ModelKind model;
    Engine engine;
    bool allowed;
    /** The paper's verdict, when the test records one. */
    std::optional<bool> expected;

    bool matchesPaper() const
    {
        return !expected.has_value() || *expected == allowed;
    }
};

/** Decide @p test under @p model with the axiomatic checker. */
bool axiomaticAllowed(const litmus::LitmusTest &test,
                      model::ModelKind model);

/**
 * Decide @p test under @p model by exhaustive operational exploration.
 * Supported models: SC, TSO and the GAM family (incl. Alpha*).
 */
bool operationalAllowed(const litmus::LitmusTest &test,
                        model::ModelKind model);

/**
 * operationalAllowed() on the multi-threaded explorer.
 * @param threads worker count; 0 means hardware concurrency
 */
bool operationalAllowedParallel(const litmus::LitmusTest &test,
                                model::ModelKind model,
                                unsigned threads = 0);

/**
 * Run every expected verdict of every test in @p tests on the engines
 * that support the model (axiomatic for all models but Alpha*;
 * operational for all but PerLocSC).
 */
std::vector<LitmusVerdict>
runLitmusMatrix(const std::vector<litmus::LitmusTest> &tests);

/**
 * runLitmusMatrix() on a thread pool: every (test, model, engine) job
 * runs concurrently, and each verdict is written to a pre-assigned slot
 * so the returned vector is identical to the serial one, in the same
 * order, regardless of scheduling.
 *
 * @param threads worker count; 0 means hardware concurrency
 */
std::vector<LitmusVerdict>
runLitmusMatrixParallel(const std::vector<litmus::LitmusTest> &tests,
                        unsigned threads = 0);

/** Render the verdict matrix, flagging mismatches with the paper. */
std::string formatLitmusMatrix(const std::vector<LitmusVerdict> &verdicts);

} // namespace gam::harness

#endif // GAM_HARNESS_LITMUS_RUNNER_HH
