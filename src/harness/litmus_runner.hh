/**
 * @file
 * Litmus-test driver: batch verdict matrices over the unified
 * decide(Query) -> Decision API (harness/decision.hh), plus the
 * legacy single-query bool entry points kept as thin wrappers.
 */

#ifndef GAM_HARNESS_LITMUS_RUNNER_HH
#define GAM_HARNESS_LITMUS_RUNNER_HH

#include <optional>
#include <string>
#include <vector>

#include "harness/decision.hh"
#include "litmus/test.hh"
#include "model/engine.hh"
#include "model/kind.hh"

namespace gam::harness
{

/**
 * Which engine decided a verdict.  Historically this enum lived here;
 * it is now model::Engine (next to the capability registry) and this
 * alias keeps existing callers compiling.
 */
using Engine = model::Engine;

/**
 * The EngineSelect that pins @p engine (never Auto).  The single
 * Engine -> EngineSelect mapping, shared by the matrix runner and the
 * CLI's --engine flag.
 */
EngineSelect engineSelectOf(model::Engine engine);

/** One (test, model, engine) verdict. */
struct LitmusVerdict
{
    std::string test;
    model::ModelKind model;
    Engine engine;
    bool allowed;
    /**
     * False when the operational state budget truncated exploration.
     * An allowed=true verdict is still conclusive (a witness was
     * reached); allowed=false is not, and is rendered as "truncated".
     */
    bool complete = true;
    /** The paper's verdict, when the test records one. */
    std::optional<bool> expected;
    /**
     * The decision's enumeration counters (zero for operational
     * rows); lets frontends aggregate pruning statistics over a
     * matrix (`gam-litmus run --stats`).
     */
    axiomatic::CheckerStats enumStats;
    /**
     * How the static pre-screen short-circuited the decision (None
     * when an engine ran); aggregated into the matrix `--stats`
     * hit-rate.
     */
    PrescreenKind prescreened = PrescreenKind::None;

    /** Is the verdict a definite answer (complete, or a witness)? */
    bool conclusive() const { return complete || allowed; }

    /** True when conclusive and matching, or when no claim is made. */
    bool matchesPaper() const
    {
        return !conclusive() || !expected.has_value()
            || *expected == allowed;
    }
};

/** Configuration of one verdict-matrix run. */
struct MatrixOptions
{
    /**
     * Engine selection per (test, model) job: a specific engine, Auto
     * (registry picks one), or -- the default, nullopt -- every engine
     * that supports the model (axiomatic/operational rows plus a cat
     * row for the models shipped as .cat files).  Unsupported (model,
     * engine) pairs are skipped.
     */
    std::optional<EngineSelect> engine;
    /** Per-query knobs (state budget, explorer threads, ...). */
    RunOptions run;
    /** Thread-pool workers deciding jobs; 0 = hardware concurrency. */
    unsigned poolThreads = 0;
    /** Decision cache; nullptr disables memoization. */
    DecisionCache *cache = &globalDecisionCache();
};

/**
 * Decide every test in @p tests under every model in @p models
 * (whether or not the test records a paper verdict; recorded verdicts
 * still show up in the expected column).  Jobs run concurrently on a
 * thread pool, each verdict written to a pre-assigned slot, so the
 * result order is deterministic regardless of scheduling.
 */
std::vector<LitmusVerdict>
runLitmusMatrix(const std::vector<litmus::LitmusTest> &tests,
                const std::vector<model::ModelKind> &models,
                const MatrixOptions &options = {});

/**
 * Like the three-argument runLitmusMatrix(), but restricted to the
 * (test, model) pairs with a recorded paper verdict -- the matrix that
 * reproduces the paper's claims.
 */
std::vector<LitmusVerdict>
runPaperMatrix(const std::vector<litmus::LitmusTest> &tests,
               const MatrixOptions &options = {});

/**
 * @deprecated Thin wrapper over decide(); prefer
 * `decide({&test, model, EngineSelect::Axiomatic}).allowed`.
 */
bool axiomaticAllowed(const litmus::LitmusTest &test,
                      model::ModelKind model);

/**
 * Decide @p test under @p model by exhaustive operational exploration.
 * Supported models: SC, TSO and the GAM family (incl. Alpha*).
 * @deprecated Thin wrapper over decide(); prefer
 * `decide({&test, model, EngineSelect::Operational}).allowed`.
 */
bool operationalAllowed(const litmus::LitmusTest &test,
                        model::ModelKind model);

/**
 * operationalAllowed() on the multi-threaded explorer.
 * @param threads worker count; 0 means hardware concurrency
 * @deprecated Thin wrapper over decide(); set RunOptions::threads.
 */
bool operationalAllowedParallel(const litmus::LitmusTest &test,
                                model::ModelKind model,
                                unsigned threads = 0);

/**
 * @deprecated Serial expected-verdict matrix; prefer runPaperMatrix()
 * (identical output; poolThreads = 1 reproduces serial execution).
 */
std::vector<LitmusVerdict>
runLitmusMatrix(const std::vector<litmus::LitmusTest> &tests);

/**
 * @deprecated Wrapper over runPaperMatrix() with poolThreads =
 * @p threads.
 */
std::vector<LitmusVerdict>
runLitmusMatrixParallel(const std::vector<litmus::LitmusTest> &tests,
                        unsigned threads = 0);

/**
 * @deprecated Wrapper over the three-argument runLitmusMatrix() with
 * poolThreads = @p threads.
 */
std::vector<LitmusVerdict>
runLitmusMatrixParallel(const std::vector<litmus::LitmusTest> &tests,
                        const std::vector<model::ModelKind> &models,
                        unsigned threads);

/**
 * Stamp expect verdicts onto @p test, derived by asking the axiomatic
 * checker whether the test's condition is reachable under each of
 * @p models.  Lets `gam-litmus gen` emit self-checking corpus files:
 * re-running them cross-checks the operational engine against the
 * recorded axiomatic verdicts.  Models without an axiomatic engine
 * (Alpha*) are skipped, and so are axiomatically-*allowed* verdicts of
 * models whose operational outcomes are conservative (ARM; see
 * model::operationalOutcomesExact): only 'forbidden' is sound to
 * record for them.
 */
void annotateExpected(litmus::LitmusTest &test,
                      const std::vector<model::ModelKind> &models);

/** Render the verdict matrix, flagging mismatches with the paper. */
std::string formatLitmusMatrix(const std::vector<LitmusVerdict> &verdicts);

} // namespace gam::harness

#endif // GAM_HARNESS_LITMUS_RUNNER_HH
