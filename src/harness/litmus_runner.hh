/**
 * @file
 * Litmus-test driver: runs a test under a model with the appropriate
 * engine (axiomatic checker, operational explorer, or both) and
 * compares against the paper's verdicts.
 */

#ifndef GAM_HARNESS_LITMUS_RUNNER_HH
#define GAM_HARNESS_LITMUS_RUNNER_HH

#include <optional>
#include <string>
#include <vector>

#include "litmus/test.hh"
#include "model/kind.hh"

namespace gam::harness
{

/** Which engine decided a verdict. */
enum class Engine { Axiomatic, Operational };

/** One (test, model, engine) verdict. */
struct LitmusVerdict
{
    std::string test;
    model::ModelKind model;
    Engine engine;
    bool allowed;
    /** The paper's verdict, when the test records one. */
    std::optional<bool> expected;

    bool matchesPaper() const
    {
        return !expected.has_value() || *expected == allowed;
    }
};

/** Decide @p test under @p model with the axiomatic checker. */
bool axiomaticAllowed(const litmus::LitmusTest &test,
                      model::ModelKind model);

/**
 * Decide @p test under @p model by exhaustive operational exploration.
 * Supported models: SC, TSO and the GAM family (incl. Alpha*).
 */
bool operationalAllowed(const litmus::LitmusTest &test,
                        model::ModelKind model);

/**
 * operationalAllowed() on the multi-threaded explorer.
 * @param threads worker count; 0 means hardware concurrency
 */
bool operationalAllowedParallel(const litmus::LitmusTest &test,
                                model::ModelKind model,
                                unsigned threads = 0);

/**
 * Run every expected verdict of every test in @p tests on the engines
 * that support the model (axiomatic for all models but Alpha*;
 * operational for all but PerLocSC).
 */
std::vector<LitmusVerdict>
runLitmusMatrix(const std::vector<litmus::LitmusTest> &tests);

/**
 * runLitmusMatrix() on a thread pool: every (test, model, engine) job
 * runs concurrently, and each verdict is written to a pre-assigned slot
 * so the returned vector is identical to the serial one, in the same
 * order, regardless of scheduling.
 *
 * @param threads worker count; 0 means hardware concurrency
 */
std::vector<LitmusVerdict>
runLitmusMatrixParallel(const std::vector<litmus::LitmusTest> &tests,
                        unsigned threads = 0);

/**
 * Like runLitmusMatrixParallel(), but decides every test under every
 * model in @p models whether or not the test records a paper verdict
 * (recorded verdicts still show up in the expected column).  This is
 * the entry point for parsed and generated tests, which usually carry
 * no expectations.  Models an engine cannot decide are skipped for
 * that engine (axiomatic: Alpha*; operational: PerLocSC).
 */
std::vector<LitmusVerdict>
runLitmusMatrixParallel(const std::vector<litmus::LitmusTest> &tests,
                        const std::vector<model::ModelKind> &models,
                        unsigned threads);

/**
 * Stamp expect verdicts onto @p test, derived by asking the axiomatic
 * checker whether the test's condition is reachable under each of
 * @p models.  Lets `gam-litmus gen` emit self-checking corpus files:
 * re-running them cross-checks the operational engine against the
 * recorded axiomatic verdicts.  Alpha* is skipped (no axioms), and so
 * are axiomatically-*allowed* ARM verdicts: the operational ARM
 * machine is conservative (outcome-set inclusion, not equality; see
 * operational/gam_machine.hh), so only 'forbidden' is sound to record.
 */
void annotateExpected(litmus::LitmusTest &test,
                      const std::vector<model::ModelKind> &models);

/** Render the verdict matrix, flagging mismatches with the paper. */
std::string formatLitmusMatrix(const std::vector<LitmusVerdict> &verdicts);

} // namespace gam::harness

#endif // GAM_HARNESS_LITMUS_RUNNER_HH
