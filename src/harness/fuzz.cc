#include "harness/fuzz.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "harness/decision.hh"
#include "litmus/parser.hh"
#include "model/engine.hh"
#include "obs/registry.hh"

namespace gam::harness
{

using model::ModelKind;

namespace
{

std::string
diffOutcomes(const litmus::OutcomeSet &op, const litmus::OutcomeSet &ax,
             bool inclusion_only, model::Engine spec)
{
    const std::string spec_name = model::engineName(spec);
    std::string s;
    for (const auto &o : op) {
        if (!ax.count(o))
            s += "operational only: " + o.toString() + "\n";
    }
    if (!inclusion_only) {
        for (const auto &o : ax) {
            if (!op.count(o))
                s += spec_name + " only: " + o.toString() + "\n";
        }
    }
    return s;
}

/** The EngineSelect pinning a spec engine (never the explorer). */
EngineSelect
specSelect(model::Engine spec)
{
    GAM_ASSERT(spec != model::Engine::Operational,
               "fuzz: the spec engine cannot be the operational "
               "explorer itself");
    return spec == model::Engine::Axiomatic ? EngineSelect::Axiomatic
                                            : EngineSelect::Cat;
}

/**
 * All one-step reductions of @p t: drop one thread (renumbering the
 * constraint and observation thread ids) or drop one instruction
 * (repointing later branch targets).  Candidates that fail
 * LitmusTest::check() are filtered by the shrinker's caller loop.
 */
std::vector<litmus::LitmusTest>
shrinkCandidates(const litmus::LitmusTest &t)
{
    std::vector<litmus::LitmusTest> out;

    if (t.threads.size() > 1) {
        for (size_t drop = 0; drop < t.threads.size(); ++drop) {
            litmus::LitmusTest c = t;
            c.threads.erase(c.threads.begin() +
                            static_cast<std::ptrdiff_t>(drop));
            auto keep_tid = [&](int tid) {
                return tid != static_cast<int>(drop);
            };
            auto shift_tid = [&](int tid) {
                return tid > static_cast<int>(drop) ? tid - 1 : tid;
            };
            std::vector<litmus::RegConstraint> conds;
            for (const auto &rc : c.regCond) {
                if (keep_tid(rc.tid))
                    conds.push_back({shift_tid(rc.tid), rc.reg,
                                     rc.value});
            }
            c.regCond = std::move(conds);
            std::vector<std::pair<int, isa::Reg>> observed;
            for (const auto &[tid, reg] : c.observedRegs) {
                if (keep_tid(tid))
                    observed.emplace_back(shift_tid(tid), reg);
            }
            c.observedRegs = std::move(observed);
            out.push_back(std::move(c));
        }
    }

    for (size_t tid = 0; tid < t.threads.size(); ++tid) {
        for (size_t i = 0; i < t.threads[tid].size(); ++i) {
            litmus::LitmusTest c = t;
            auto &code = c.threads[tid].code;
            code.erase(code.begin() + static_cast<std::ptrdiff_t>(i));
            for (auto &instr : code) {
                if (instr.isBranch()
                    && instr.imm > static_cast<int64_t>(i)) {
                    --instr.imm;
                }
            }
            out.push_back(std::move(c));
        }
    }
    return out;
}

/** Greedily minimise @p test while the divergence reproduces. */
litmus::LitmusTest
shrinkDivergent(litmus::LitmusTest test, ModelKind model,
                uint64_t max_states, model::Engine spec)
{
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto &candidate : shrinkCandidates(test)) {
            if (candidate.check())
                continue;
            bool budget = false;
            if (crossCheck(candidate, model, max_states, &budget, spec)
                && !budget) {
                test = std::move(candidate);
                progress = true;
                break;
            }
        }
    }
    return test;
}

} // anonymous namespace

std::optional<std::string>
crossCheck(const litmus::LitmusTest &test, ModelKind model,
           uint64_t max_states, bool *budget_exceeded,
           model::Engine spec, axiomatic::CheckerStats *spec_stats)
{
    GAM_ASSERT(model::supportsEngine(model, model::Engine::Operational)
                   && model::supportsEngine(model, spec),
               "crossCheck: %s has no operational/%s engine pair",
               model::modelName(model).c_str(),
               model::engineName(spec).c_str());
    if (budget_exceeded)
        *budget_exceeded = false;

    Query query;
    query.test = &test;
    query.model = model;
    query.engine = EngineSelect::Operational;
    query.options.stateBudget = max_states;
    // The differential check compares outcome *sets*; a ValueCover
    // prescreen decision carries none, and an ScDelegate one would put
    // the same analysis on both sides of the comparison.  Exercise the
    // real engines.
    query.options.prescreen = false;
    const Decision op = decide(query);
    if (!op.complete) {
        if (budget_exceeded)
            *budget_exceeded = true;
        return std::nullopt;
    }

    query.engine = specSelect(spec);
    const Decision ax = decide(query);
    if (spec_stats)
        spec_stats->merge(ax.enumStats);

    // A conservative machine (ARM) checks by inclusion, not equality
    // (see model::operationalOutcomesExact).
    const bool inclusion_only = !model::operationalOutcomesExact(model);
    bool diverges;
    if (inclusion_only) {
        diverges = std::any_of(op.outcomes.begin(), op.outcomes.end(),
                               [&](const litmus::Outcome &o) {
                                   return !ax.outcomes.count(o);
                               });
    } else {
        diverges = op.outcomes != ax.outcomes;
    }
    if (!diverges)
        return std::nullopt;
    return diffOutcomes(op.outcomes, ax.outcomes, inclusion_only, spec);
}

FuzzReport
fuzzDifferential(const FuzzOptions &options)
{
    FuzzReport report;
    report.testsRun = options.tests;
    report.spec = options.spec;

    struct Hit
    {
        uint64_t index;
        ModelKind model;
    };
    std::mutex mu;
    std::vector<Hit> hits;
    std::atomic<uint64_t> checks{0};
    std::atomic<uint64_t> skipped{0};

    ThreadPool pool(options.threads);
    pool.parallelFor(options.tests, [&](size_t i) {
        const litmus::LitmusTest test =
            litmus::generateTest(options.seed, i, options.generator);
        if (test.check())
            return; // generator guarantees this; stay safe regardless
        axiomatic::CheckerStats local;
        for (ModelKind model : options.models) {
            if (!model::supportsEngine(model, model::Engine::Operational)
                || !model::supportsEngine(model, options.spec)) {
                continue; // nothing to cross-check under this spec
            }
            bool budget = false;
            auto diff = crossCheck(test, model, options.maxStates,
                                   &budget, options.spec, &local);
            checks.fetch_add(1, std::memory_order_relaxed);
            if (budget) {
                skipped.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            if (diff) {
                std::lock_guard<std::mutex> lock(mu);
                hits.push_back({i, model});
            }
        }
        std::lock_guard<std::mutex> lock(mu);
        report.specEnumStats.merge(local);
    });

    report.checksRun = checks.load();
    report.skippedBudget = skipped.load();

    // Report through the registry too, so fuzz runs show up in the
    // same snapshot stream as everything else in the decide() stack.
    obs::MetricRegistry &reg = obs::metrics();
    reg.counter("fuzz.tests").inc(report.testsRun);
    reg.counter("fuzz.checks").inc(report.checksRun);
    reg.counter("fuzz.skipped_budget").inc(report.skippedBudget);
    reg.counter("fuzz.divergences").inc(hits.size());

    // Deterministic report order regardless of worker scheduling.
    std::sort(hits.begin(), hits.end(), [](const Hit &a, const Hit &b) {
        return a.index != b.index ? a.index < b.index
                                  : a.model < b.model;
    });
    for (const Hit &hit : hits) {
        FuzzDivergence d;
        d.seed = options.seed;
        d.index = hit.index;
        d.model = hit.model;
        d.test = litmus::generateTest(options.seed, hit.index,
                                      options.generator);
        if (options.shrink) {
            d.test = shrinkDivergent(std::move(d.test), hit.model,
                                     options.maxStates, options.spec);
        }
        d.detail = crossCheck(d.test, hit.model, options.maxStates,
                              nullptr, options.spec)
                       .value_or("");
        report.divergences.push_back(std::move(d));
    }
    return report;
}

std::string
FuzzReport::toString() const
{
    std::ostringstream os;
    os << formatString("fuzz (%s vs operational): %llu tests, %llu "
                       "checks, %llu skipped (state budget), %zu "
                       "divergences\n",
                       model::engineName(spec).c_str(),
                       static_cast<unsigned long long>(testsRun),
                       static_cast<unsigned long long>(checksRun),
                       static_cast<unsigned long long>(skippedBudget),
                       divergences.size());
    os << formatString("spec enumeration: %llu candidates checked, "
                       "%llu partials pruned, %llu subtrees skipped, "
                       "%llu rf maps statically skipped\n",
                       static_cast<unsigned long long>(
                           specEnumStats.coCandidates),
                       static_cast<unsigned long long>(
                           specEnumStats.partialsPruned),
                       static_cast<unsigned long long>(
                           specEnumStats.subtreesSkipped),
                       static_cast<unsigned long long>(
                           specEnumStats.rfStaticSkipped));
    for (const auto &d : divergences) {
        os << "\n=== divergence under " << model::modelName(d.model)
           << " (seed " << d.seed << ", test " << d.index << ") ===\n"
           << litmus::printLitmus(d.test) << "\n" << d.detail;
    }
    return os.str();
}

} // namespace gam::harness
