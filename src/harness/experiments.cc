#include "harness/experiments.hh"

#include <cstdio>

#include <algorithm>

#include "base/logging.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"
#include "model/engine.hh"
#include "sim/trace_gen.hh"

namespace gam::harness
{

using model::ModelKind;

RunResult
runOne(const workload::WorkloadSpec &spec, ModelKind kind,
       const CampaignConfig &config)
{
    workload::BuiltWorkload built = spec.build();
    sim::DynTrace trace = sim::generateTrace(built.program,
                                             std::move(built.mem),
                                             spec.maxUops);
    GAM_ASSERT(!trace.uops.empty(), "workload '%s' produced no uops",
               spec.name.c_str());
    sim::Core core(trace, kind, config.core, config.mem);
    RunResult r;
    r.workload = spec.name;
    r.model = kind;
    r.stats = core.run(config.warmupUops);
    if (config.verbose) {
        std::fprintf(stderr, "  %-14s %-7s uPC=%.3f (%llu uops, %llu "
                     "cycles)\n", spec.name.c_str(),
                     model::modelName(kind).c_str(), r.stats.upc(),
                     (unsigned long long)r.stats.committedUops,
                     (unsigned long long)r.stats.cycles);
    }
    return r;
}

std::vector<RunResult>
runCampaign(const std::vector<ModelKind> &models,
            const CampaignConfig &config)
{
    std::vector<RunResult> results;
    for (const auto &spec : workload::workloadSuite())
        for (ModelKind kind : models)
            results.push_back(runOne(spec, kind, config));
    return results;
}

const RunResult &
find(const std::vector<RunResult> &results, const std::string &workload,
     ModelKind kind)
{
    for (const auto &r : results)
        if (r.workload == workload && r.model == kind)
            return r;
    fatal("no result for (%s, %s)", workload.c_str(),
          model::modelName(kind).c_str());
}

std::string
formatFig18(const std::vector<RunResult> &results)
{
    const ModelKind others[] = {ModelKind::ARM, ModelKind::GAM0,
                                ModelKind::AlphaStar};
    Table t;
    t.header({"benchmark", "GAM uPC", "ARM", "GAM0", "Alpha*"});

    std::map<ModelKind, std::vector<double>> normalized;
    for (const auto &spec : workload::workloadSuite()) {
        const double gam_upc =
            find(results, spec.name, ModelKind::GAM).stats.upc();
        std::vector<std::string> row{spec.name, Table::num(gam_upc)};
        for (ModelKind kind : others) {
            const double upc = find(results, spec.name, kind).stats.upc();
            const double norm = gam_upc > 0 ? upc / gam_upc : 0.0;
            normalized[kind].push_back(norm);
            row.push_back(Table::num(norm, 4));
        }
        t.row(std::move(row));
    }
    t.separator();
    std::vector<std::string> avg{"average", ""};
    for (ModelKind kind : others)
        avg.push_back(Table::num(Summary::of(normalized[kind]).average, 4));
    t.row(std::move(avg));

    std::string out =
        "Figure 18: uPC normalized to GAM (columns ARM/GAM0/Alpha*)\n";
    out += t.render();
    out += "\nPaper shape: every normalized uPC is ~1.0 (avg gain "
           "< 0.3%, never > 3%).\n";
    return out;
}

std::string
formatTable2(const std::vector<RunResult> &results)
{
    std::vector<double> gam_kills, gam_stalls, arm_stalls;
    for (const auto &spec : workload::workloadSuite()) {
        const auto &gam = find(results, spec.name, ModelKind::GAM).stats;
        const auto &arm = find(results, spec.name, ModelKind::ARM).stats;
        gam_kills.push_back(gam.perKuops(gam.saLdLdKills));
        gam_stalls.push_back(gam.perKuops(gam.saLdLdStalls));
        arm_stalls.push_back(arm.perKuops(arm.saLdLdStalls));
    }
    const Summary k = Summary::of(gam_kills);
    const Summary s = Summary::of(gam_stalls);
    const Summary a = Summary::of(arm_stalls);

    Table t;
    t.header({"event (per 1K uOPs)", "Average", "Max"});
    t.row({"Kills in GAM", Table::num(k.average, 3),
           Table::num(k.maximum, 3)});
    t.row({"Stalls in GAM", Table::num(s.average, 3),
           Table::num(s.maximum, 3)});
    t.row({"Stalls in ARM", Table::num(a.average, 3),
           Table::num(a.maximum, 3)});

    std::string out = "Table II: kills and stalls caused by "
                      "same-address load-load ordering\n";
    out += t.render();
    out += "\nPaper shape: both kills and stalls are rare "
           "(avg ~0.2/1K uOPs; max a few per 1K).\n";
    return out;
}

std::string
formatTable3(const std::vector<RunResult> &results)
{
    std::vector<double> ll_fwds, saved_misses;
    for (const auto &spec : workload::workloadSuite()) {
        const auto &alpha =
            find(results, spec.name, ModelKind::AlphaStar).stats;
        const auto &gam = find(results, spec.name, ModelKind::GAM).stats;
        ll_fwds.push_back(alpha.perKuops(alpha.llForwards));
        const double delta = gam.perKuops(gam.l1dLoadMisses)
            - alpha.perKuops(alpha.l1dLoadMisses);
        saved_misses.push_back(delta);
    }
    const Summary f = Summary::of(ll_fwds);
    const Summary m = Summary::of(saved_misses);

    Table t;
    t.header({"event (per 1K uOPs)", "Average", "Max"});
    t.row({"Load-load forwardings", Table::num(f.average, 2),
           Table::num(f.maximum, 2)});
    t.row({"Reduced L1 load misses over GAM", Table::num(m.average, 3),
           Table::num(m.maximum, 3)});

    std::string out = "Table III: effects of load-load forwardings "
                      "in Alpha*\n";
    out += t.render();
    out += "\nPaper shape: forwardings are frequent (avg ~22/1K) but "
           "almost never remove an L1 miss (~0.01/1K).\n";
    return out;
}

std::string
formatTable1(const sim::CoreParams &core, const mem::MemSystemParams &mem)
{
    Table t;
    t.header({"parameter", "value"});
    t.row({"Width", formatString("%d-way fetch/rename/commit, %d-way "
                                 "issue", core.fetchWidth,
                                 core.issueWidth)});
    t.row({"Function units",
           formatString("%d IntALU, %d IntMul, %d IntDiv, %d FpALU, "
                        "%d FpMul, %d FpDiv, %d mem ports", core.intAlu,
                        core.intMul, core.intDiv, core.fpAlu, core.fpMul,
                        core.fpDiv, core.memPorts)});
    t.row({"Buffers", formatString("%d ROB, %d RS, %d LQ, %d SQ",
                                   core.robSize, core.rsSize,
                                   core.lqSize, core.sqSize)});
    auto cache_row = [&](const mem::CacheParams &c) {
        t.row({c.name, formatString("%u KB, %u-way, %u-cycle, %u MSHRs",
                                    c.sizeBytes / 1024, c.assoc,
                                    c.hitLatency, c.mshrs)});
    };
    cache_row(mem.l1i);
    cache_row(mem.l1d);
    cache_row(mem.l2);
    cache_row(mem.l3);
    t.row({"Memory", formatString("%llu-cycle latency, %.2f B/cycle "
                                  "(12.8 GB/s at 2.5 GHz)",
                                  (unsigned long long)mem.dramLatency,
                                  mem.dramBytesPerCycle)});
    return "Table I: simulated processor parameters\n" + t.render();
}

std::vector<EquivalenceRow>
runEquivalenceExperiment(const std::vector<litmus::LitmusTest> &tests,
                         const std::vector<model::ModelKind> &models,
                         const RunOptions &run, unsigned pool_threads)
{
    struct Job
    {
        const litmus::LitmusTest *test;
        ModelKind model;
    };
    std::vector<Job> jobs;
    for (const auto &test : tests) {
        for (ModelKind model : models) {
            if (model::hasEnginePair(model))
                jobs.push_back({&test, model});
        }
    }

    std::vector<EquivalenceRow> rows(jobs.size());
    ThreadPool pool(pool_threads);
    pool.parallelFor(jobs.size(), [&](size_t i) {
        Query query;
        query.test = jobs[i].test;
        query.model = jobs[i].model;
        query.options = run;
        // The experiment compares outcome sets of the two engines; the
        // static pre-screen would answer for both sides with the same
        // (SC-delegated) set and mask a genuine divergence.
        query.options.prescreen = false;

        EquivalenceRow &row = rows[i];
        row.test = jobs[i].test->name;
        row.model = jobs[i].model;
        query.engine = EngineSelect::Axiomatic;
        row.axiomatic = decide(query);
        query.engine = EngineSelect::Operational;
        row.operational = decide(query);

        const auto &ax = row.axiomatic.outcomes;
        const auto &op = row.operational.outcomes;
        if (model::operationalOutcomesExact(row.model)) {
            row.agree = row.operational.complete && ax == op;
        } else {
            row.agree = row.operational.complete
                && std::all_of(op.begin(), op.end(),
                               [&](const litmus::Outcome &o) {
                                   return ax.count(o) != 0;
                               });
        }
    });
    return rows;
}

std::string
formatEquivalence(const std::vector<EquivalenceRow> &rows)
{
    Table t;
    t.header({"test", "model", "ax outcomes", "op outcomes",
              "op states", "relation", "agree"});
    int disagreements = 0;
    int truncated = 0;
    for (const auto &row : rows) {
        // A budget-truncated exploration cannot witness a
        // disagreement; keep it out of the refutation count.
        const bool inconclusive = !row.operational.complete;
        if (inconclusive)
            ++truncated;
        else if (!row.agree)
            ++disagreements;
        t.row({row.test, model::modelName(row.model),
               formatString("%zu", row.axiomatic.outcomes.size()),
               formatString("%zu", row.operational.outcomes.size()),
               formatString("%llu", (unsigned long long)
                                        row.operational.statesVisited),
               model::operationalOutcomesExact(row.model) ? "equal"
                                                          : "subset",
               inconclusive ? "truncated"
                            : row.agree ? "yes" : "DISAGREE"});
    }
    std::string out = "Equivalence of the axiomatic and operational "
                      "definitions (Section IV)\n";
    out += t.render();
    out += formatString("\n%d pairs, %d disagreements\n",
                        int(rows.size()), disagreements);
    if (truncated > 0) {
        out += formatString("%d pairs truncated by the state budget "
                            "(inconclusive)\n", truncated);
    }
    return out;
}

} // namespace gam::harness
