/**
 * @file
 * Drivers that regenerate the paper's evaluation artifacts: the
 * workload x model simulation matrix behind Figure 18 and Tables II
 * and III, and the formatted tables themselves.
 */

#ifndef GAM_HARNESS_EXPERIMENTS_HH
#define GAM_HARNESS_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "harness/decision.hh"
#include "litmus/test.hh"
#include "model/kind.hh"
#include "sim/core.hh"
#include "workload/workloads.hh"

namespace gam::harness
{

/** One (workload, model) simulation result. */
struct RunResult
{
    std::string workload;
    model::ModelKind model;
    sim::SimStats stats;
};

/** Simulation-campaign configuration. */
struct CampaignConfig
{
    sim::CoreParams core;
    mem::MemSystemParams mem;
    /** Committed uops used to warm caches and predictors. */
    uint64_t warmupUops = 20000;
    /** Print one progress line per run to stderr. */
    bool verbose = false;
};

/** Simulate one workload under one model. */
RunResult runOne(const workload::WorkloadSpec &spec, model::ModelKind kind,
                 const CampaignConfig &config = {});

/** Simulate the full workload suite under @p models. */
std::vector<RunResult>
runCampaign(const std::vector<model::ModelKind> &models,
            const CampaignConfig &config = {});

/** Fetch one result from a campaign. */
const RunResult &find(const std::vector<RunResult> &results,
                      const std::string &workload, model::ModelKind kind);

/** Figure 18: per-workload uPC of each model normalised to GAM. */
std::string formatFig18(const std::vector<RunResult> &results);

/** Table II: kills and stalls per 1K uops under GAM and ARM. */
std::string formatTable2(const std::vector<RunResult> &results);

/** Table III: load-load forwarding effects of Alpha* vs GAM. */
std::string formatTable3(const std::vector<RunResult> &results);

/** Table I: the simulated processor configuration. */
std::string formatTable1(const sim::CoreParams &core,
                         const mem::MemSystemParams &mem);

/** One (test, model) pair decided by both engines. */
struct EquivalenceRow
{
    std::string test;
    model::ModelKind model;
    Decision axiomatic;
    Decision operational;
    /**
     * Outcome sets agree: equality where the operational machine is
     * exact, inclusion where it is conservative (see
     * model::operationalOutcomesExact).  Also false when the
     * operational run was truncated by the state budget -- then the
     * comparison is inconclusive, not a disagreement, and
     * formatEquivalence() renders it as "truncated".
     */
    bool agree = false;
};

/**
 * The paper's equivalence theorem as a regenerable artifact: decide
 * every test under every model with *both* engines through the
 * Decision API and compare their outcome sets.  Models lacking either
 * engine are skipped.  Jobs run concurrently on a thread pool with one
 * pre-assigned slot per row, so the output order is deterministic.
 */
std::vector<EquivalenceRow>
runEquivalenceExperiment(const std::vector<litmus::LitmusTest> &tests,
                         const std::vector<model::ModelKind> &models,
                         const RunOptions &run = {},
                         unsigned pool_threads = 0);

/** Render the equivalence rows with per-engine work columns. */
std::string
formatEquivalence(const std::vector<EquivalenceRow> &rows);

} // namespace gam::harness

#endif // GAM_HARNESS_EXPERIMENTS_HH
