/**
 * @file
 * Drivers that regenerate the paper's evaluation artifacts: the
 * workload x model simulation matrix behind Figure 18 and Tables II
 * and III, and the formatted tables themselves.
 */

#ifndef GAM_HARNESS_EXPERIMENTS_HH
#define GAM_HARNESS_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "model/kind.hh"
#include "sim/core.hh"
#include "workload/workloads.hh"

namespace gam::harness
{

/** One (workload, model) simulation result. */
struct RunResult
{
    std::string workload;
    model::ModelKind model;
    sim::SimStats stats;
};

/** Simulation-campaign configuration. */
struct CampaignConfig
{
    sim::CoreParams core;
    mem::MemSystemParams mem;
    /** Committed uops used to warm caches and predictors. */
    uint64_t warmupUops = 20000;
    /** Print one progress line per run to stderr. */
    bool verbose = false;
};

/** Simulate one workload under one model. */
RunResult runOne(const workload::WorkloadSpec &spec, model::ModelKind kind,
                 const CampaignConfig &config = {});

/** Simulate the full workload suite under @p models. */
std::vector<RunResult>
runCampaign(const std::vector<model::ModelKind> &models,
            const CampaignConfig &config = {});

/** Fetch one result from a campaign. */
const RunResult &find(const std::vector<RunResult> &results,
                      const std::string &workload, model::ModelKind kind);

/** Figure 18: per-workload uPC of each model normalised to GAM. */
std::string formatFig18(const std::vector<RunResult> &results);

/** Table II: kills and stalls per 1K uops under GAM and ARM. */
std::string formatTable2(const std::vector<RunResult> &results);

/** Table III: load-load forwarding effects of Alpha* vs GAM. */
std::string formatTable3(const std::vector<RunResult> &results);

/** Table I: the simulated processor configuration. */
std::string formatTable1(const sim::CoreParams &core,
                         const mem::MemSystemParams &mem);

} // namespace gam::harness

#endif // GAM_HARNESS_EXPERIMENTS_HH
