/**
 * @file
 * The unified model-query API: one decide(Query) -> Decision entry
 * point over all verification engines (axiomatic, operational, cat),
 * plus a memoizing cache.
 *
 * The paper's central claim is that the GAM axiomatic definition and
 * its abstract machine are two views of *one* model.  This API makes
 * the library reflect that: callers describe *what* they want decided
 * (a litmus test under a model, with optional budgets and engine
 * preferences) and the registry dispatches to whichever engine can
 * answer, reporting back which one ran, the full outcome set, how much
 * work it did and whether the answer is exhaustive.  Engine capability
 * comes from model/engine.hh -- there is no per-frontend support
 * switch anywhere else.
 *
 * Repeated queries are endemic: the litmus matrix decides every suite
 * test under every model, fuzz shrinking re-decides a candidate per
 * deleted instruction, and fence synthesis probes hundreds of fence
 * placements over the same base test.  decide() therefore memoizes
 * complete decisions in a sharded, thread-safe DecisionCache keyed by
 * (test fingerprint, model, engine, options fingerprint); truncated
 * (incomplete) results are never cached, which also makes the cached
 * value independent of the explorer's thread count.
 */

#ifndef GAM_HARNESS_DECISION_HH
#define GAM_HARNESS_DECISION_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "axiomatic/checker.hh"
#include "litmus/outcome.hh"
#include "litmus/test.hh"
#include "model/engine.hh"
#include "model/kind.hh"

namespace gam::cat
{
struct CatModel;
} // namespace gam::cat

namespace gam::harness
{

/** Engine preference of a Query. */
enum class EngineSelect {
    /**
     * Let the registry pick: the axiomatic checker when the model has
     * axioms (it is the definition, and almost always cheaper), else
     * the operational explorer (Alpha*'s only definition).  Auto
     * never picks the cat engine: the hand-coded checker decides the
     * same candidates faster.
     */
    Auto,
    Axiomatic,
    Operational,
    /** The cat-DSL engine over Query::catModel or the builtin file. */
    Cat,
};

/** How a Decision was (or was not) short-circuited before any engine. */
enum class PrescreenKind {
    /** An engine (or the cache) produced the decision. */
    None,
    /**
     * The static value-cover analysis (analysis/prescreen.hh) proved
     * the condition unsatisfiable: allowed = false with an *empty*
     * outcome set -- sound for the verdict, but not an outcome
     * enumeration.  Never cached, so outcome-set consumers that
     * disable prescreening still get exact sets.
     */
    ValueCover,
    /**
     * Every po-adjacent memory pair is statically preserved program
     * order under the queried model, so the query was delegated to SC:
     * the outcome set is exact and equals the model's own.
     */
    ScDelegate,
};

/** Display name ("", "value-cover", "sc-delegate"). */
std::string prescreenKindName(PrescreenKind kind);

/** Knobs shared by every engine invocation. */
struct RunOptions
{
    /**
     * Worker threads (1 = serial, 0 = hardware concurrency): the
     * operational explorer's frontier workers, and the enumeration
     * engines' parallel search over top-level read-from prefixes
     * (axiomatic::Options::searchThreads).  Does not affect the
     * decision: both parallel merges are deterministic, and truncated
     * runs are never cached.
     */
    unsigned threads = 1;
    /**
     * Operational visited-state budget.  When exhausted the decision
     * comes back with complete = false and is not cached.  (Sized so
     * the 4-thread IRIW-family corpus explores to completion.)
     */
    uint64_t stateBudget = 32'000'000;
    /** Axiomatic checker knobs (OOTA seeding, axiom ablation). */
    axiomatic::Options axiomatic;
    /**
     * Let decide() try the static pre-screen (analysis/prescreen.hh)
     * before running an engine.  The pre-screen never changes the
     * *verdict* -- it is differentially validated against the engines
     * -- but a ValueCover decision carries no outcome enumeration, so
     * callers that compare outcome *sets* (the fuzzer's cross-check)
     * turn it off.  Excluded from fingerprint(): ValueCover decisions
     * are never cached, and ScDelegate decisions are exact.
     */
    bool prescreen = true;
    /**
     * Run cat-engine queries through the compiled plan
     * (cat/compile.hh) rather than the interpreting evaluator.  Both
     * modes decide identical outcome sets by construction (the
     * compiler's differential tests enforce it), so this knob is
     * canonicalized away in queryKey(): it selects a pipeline, not an
     * answer.  Kept as an escape hatch for differential runs and
     * debugging.
     */
    bool catCompile = true;

    /**
     * 64-bit digest of the option fields (threads excluded, see its
     * comment).  queryKey() canonicalizes result-irrelevant knobs
     * away before calling this -- the budget always (cached decisions
     * are complete, hence budget-independent), and the checker knobs
     * for operational queries -- so frontends differing only in those
     * share cache entries.
     */
    uint64_t fingerprint() const;
};

/** One model query: decide @p test under @p model. */
struct Query
{
    const litmus::LitmusTest *test = nullptr;
    model::ModelKind model = model::ModelKind::GAM;
    EngineSelect engine = EngineSelect::Auto;
    RunOptions options;
    /**
     * The model file for the cat engine: nullptr decides the builtin
     * cat model expressing `model` (.cat files under models/), a non-null pointer
     * overrides it with a custom parsed model (whose source hash then
     * keys the decision cache -- two different files never share an
     * entry, re-deciding after an edit really re-runs).  Ignored by
     * the other engines.  Not owned; must outlive the query.
     */
    const cat::CatModel *catModel = nullptr;
};

/** The answer to a Query. */
struct Decision
{
    /** Is the test's asked-about condition reachable? */
    bool allowed = false;
    /** Every outcome the deciding engine admits. */
    litmus::OutcomeSet outcomes;
    /** The engine that actually decided (Auto resolved). */
    model::Engine engine = model::Engine::Axiomatic;
    /**
     * Work done: states expanded (operational) or complete (rf, co)
     * candidates checked (enumeration engines; the pruned search
     * reaches far fewer than the legacy pipeline materialized).
     */
    uint64_t statesVisited = 0;
    /**
     * Enumeration counters (read-from maps tried, partial candidates
     * pruned, subtrees skipped, backtrack depth, ...) when the
     * deciding engine enumerates candidates
     * (model::engineUsesCandidateEnumeration); all-zero for
     * operational decisions.  Cached decisions replay the counters of
     * the run that produced them.
     */
    axiomatic::CheckerStats enumStats;
    /**
     * True when the outcome set is exhaustive.  False only for
     * operational runs cut off by RunOptions::stateBudget; such
     * decisions report the outcomes found so far and `allowed` is
     * only a lower bound (a "forbidden" answer is *not* conclusive).
     */
    bool complete = true;
    /** Engine wall time; ~0 on a cache hit. */
    double wallSeconds = 0.0;
    /**
     * The cat engine decided this query through a compiled plan
     * (RunOptions::catCompile); false for every other engine.  Cached
     * decisions replay the flag of the run that produced them.
     */
    bool catCompiled = false;
    /** True when the decision was served from the DecisionCache. */
    bool cacheHit = false;
    /**
     * True when the decision was served from a persistent
     * DecisionBackend (e.g. the campaign store).  Backend records keep
     * a compact witness of the outcome set (its size and 64-bit
     * digest), not the set itself, so a store-served Decision is
     * *verdict-only*: `outcomes` is empty even when outcomes exist.
     * Consumers that need the enumeration must decide without a
     * backend; decide() never inserts such a reconstruction into the
     * in-memory cache for the same reason.
     */
    bool storeHit = false;
    /**
     * How the static pre-screen short-circuited this decision; None
     * when an engine (or the cache) answered.  See PrescreenKind for
     * what each value guarantees about `outcomes`.
     */
    PrescreenKind prescreened = PrescreenKind::None;
    /**
     * Id of the obs::TraceSpan covering this decision, 0 when tracing
     * was disabled.  Lets a frontend correlate a Decision with its
     * "decide" span (and that span's cache/store/prescreen/engine
     * children) in an exported Chrome trace.
     */
    uint64_t traceSpanId = 0;
};

/** Hit/miss counters and occupancy shape of one DecisionCache. */
struct DecisionCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    /** Decisions not stored (truncated by the state budget). */
    uint64_t uncached = 0;
    /** Residents displaced to make room once a shard filled up. */
    uint64_t evictions = 0;
    /** Decisions currently resident across all shards. */
    uint64_t residents = 0;
    /** Number of shards (denominator of shardMean). */
    unsigned shardCount = 0;
    /** Residents in the fullest shard. */
    uint64_t shardMax = 0;
    /**
     * Mean residents per shard.  shardMax / shardMean is the occupancy
     * skew: ~1 when keys spread evenly, >> 1 when fingerprints cluster
     * onto few shards (premature evictions while the cache is mostly
     * empty -- the key router routes on the top 5 bits, so a biased
     * fingerprint hash shows up here first).
     */
    double shardMean = 0.0;
};

/**
 * A sharded, thread-safe map from query keys to complete Decisions.
 *
 * The key is a single 64-bit combination of (litmus::fingerprint(test),
 * model, engine, RunOptions::fingerprint()); as with the explorer's
 * StateSet, a collision would need ~2^32 distinct queries to become
 * likely, far beyond any realistic campaign.  Sharding keeps
 * concurrent decide() calls from serialising on one mutex: a key is
 * routed to shard (key >> 59), and each shard has its own lock and
 * map.  Capacity is bounded: when a shard is full an arbitrary
 * resident entry is evicted first, so unbounded fuzz campaigns cannot
 * grow the cache without limit.
 *
 * Two threads deciding the same cold query race benignly: both
 * compute, both insert the same value, and both report a miss.
 */
class DecisionCache
{
  public:
    /** @param max_entries total capacity across all shards. */
    explicit DecisionCache(size_t max_entries = 1 << 20);
    ~DecisionCache();

    DecisionCache(const DecisionCache &) = delete;
    DecisionCache &operator=(const DecisionCache &) = delete;

    /** The cached decision for @p key, if any (counts a hit/miss). */
    std::optional<Decision> lookup(uint64_t key);

    /** Memoize @p decision; incomplete decisions are dropped. */
    void insert(uint64_t key, const Decision &decision);

    /** Decisions currently resident. */
    size_t size() const;

    /** Total entry capacity across all shards (occupancy = size()/this). */
    size_t capacity() const;

    DecisionCacheStats stats() const;

    /** Drop every entry and zero the stats. */
    void clear();

  private:
    struct Shard;
    static constexpr unsigned ShardCount = 32;

    Shard &shardFor(uint64_t key);

    std::unique_ptr<Shard[]> shards;
    size_t shardCapacity;
    /** Cache-wide counters; atomic so shards never share a stats lock. */
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> uncached{0};
    std::atomic<uint64_t> evictions{0};
};

/**
 * A persistent second-level decision source behind the in-memory
 * cache, implemented by campaign/store.hh.  decide() consults it on a
 * cache miss and offers every freshly engine-decided (or exactly
 * SC-delegated) complete decision back through store().
 *
 * Contract for load(): a hit must reconstruct the verdict faithfully
 * (allowed, engine, prescreened, complete = true) with storeHit set,
 * but carries no outcome enumeration -- see Decision::storeHit.
 * Implementations must be thread-safe; decide() is called from
 * campaign worker threads concurrently.
 */
class DecisionBackend
{
  public:
    virtual ~DecisionBackend() = default;

    /** The persisted decision under @p key, if any. */
    virtual std::optional<Decision> load(uint64_t key) = 0;

    /**
     * Offer a freshly decided @p decision for persistence.  decide()
     * only calls this with complete decisions that carry their exact
     * outcome enumeration (or a deterministically reproducible
     * ValueCover verdict); implementations may still ignore the offer.
     */
    virtual void store(uint64_t key, const Query &query,
                       const Decision &decision) = 0;
};

/**
 * The process-wide cache used when a caller does not bring its own.
 * Shared by the litmus runner, the fuzzer, fence synthesis and the
 * CLI, so e.g. a fuzz run warms the matrix for free.
 */
DecisionCache &globalDecisionCache();

/** The cache key decide() uses for @p query (exposed for tests). */
uint64_t queryKey(const Query &query, model::Engine engine);

/**
 * The engine Auto resolves to for @p query.  Explicit selections pass
 * through unchecked here; decide() asserts supportsEngine() for them.
 */
model::Engine resolveEngine(const Query &query);

/**
 * Decide @p query: resolve the engine through the registry, serve from
 * @p cache when possible, then from @p backend, otherwise run the
 * engine and memoize.
 *
 * @param cache   the memoization cache; nullptr disables caching
 *                entirely (every call recomputes).  Defaults to the
 *                process-wide cache.
 * @param backend optional persistent store consulted after a cache
 *                miss.  A backend hit returns a verdict-only Decision
 *                (storeHit set, no outcome enumeration) and is *not*
 *                inserted into the cache; a backend miss persists the
 *                fresh decision once the engine has produced it.
 *
 * Preconditions (GAM_ASSERT): query.test is non-null and the resolved
 * engine supports query.model -- gate explicit engine selections with
 * model::supportsEngine() first.
 */
Decision decide(const Query &query,
                DecisionCache *cache = &globalDecisionCache(),
                DecisionBackend *backend = nullptr);

/**
 * Decide a batch of queries through the same pipeline as decide(),
 * amortizing per-query fixed costs across the batch:
 *
 *  - axiomatic engine runs are *fused*: every query that reaches the
 *    axiomatic engine against the same (test, checker options) pair
 *    is deferred, and one shared enumeration pass decides them all
 *    (axiomatic::enumerateModels) -- the rf-candidate stream, the
 *    value fixpoint and the coherence walk run once, with one filter
 *    lane per model.  SC-delegated queries join the pass's SC lane.
 *    The fused pass is serial (RunOptions::threads is ignored for
 *    these queries) and one preservedProgramOrder() memo is shared
 *    across the whole batch;
 *  - each distinct cat model is compiled once per batch and the plan
 *    shared by every query in its group (CatEngine::usePlan);
 *  - each distinct test gets one CandidateBuilder arena
 *    and one litmus::fingerprint() hash, reused by every key
 *    computation.
 *
 * Results are returned in input order, and every query decides
 * exactly as the equivalent decide() call would -- same verdict, same
 * outcome set, same per-model enumeration counters, same cache/store/
 * prescreen interactions (decision_batch_test pins the equivalence).
 * One caveat: duplicate identical queries *within one batch* each run
 * the (shared) engine pass instead of the second hitting the cache,
 * so each lands on an engine terminal counter; verdicts and persisted
 * records are unaffected.  The per-request decide.* metrics otherwise
 * fire as usual; decide.batch.* counts the batch calls, grouped
 * queries, fused passes and their fan-in, and how often a plan or
 * builder arena was served from the batch instead of rebuilt.
 */
std::vector<Decision>
decideBatch(const std::vector<Query> &queries,
            DecisionCache *cache = &globalDecisionCache(),
            DecisionBackend *backend = nullptr);

} // namespace gam::harness

#endif // GAM_HARNESS_DECISION_HH
