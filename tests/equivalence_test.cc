/**
 * The paper's central theorem, property-tested: the operational and
 * axiomatic definitions of GAM accept exactly the same behaviors.
 *
 * For seeded random multi-threaded programs, the outcome set
 * enumerated by exhaustive exploration of the abstract machine must
 * equal the outcome set accepted by the axioms.  The same property is
 * checked for GAM0 and ARM (machine variants of Section III-E), and
 * for the SC and TSO reference pairs.
 */

#include <gtest/gtest.h>

#include "axiomatic/checker.hh"
#include "base/rng.hh"
#include "litmus/suite.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "operational/sc_machine.hh"
#include "operational/tso_machine.hh"

namespace gam
{
namespace
{

using isa::ProgramBuilder;
using isa::R;
using litmus::LitmusTest;
using model::ModelKind;

/**
 * Generate a random straight-line multi-threaded program over two
 * shared locations, with data-dependency chains, artificial address
 * dependencies and fences sprinkled in.
 */
LitmusTest
randomTest(uint64_t seed)
{
    Rng rng(seed);
    const int nthreads = 2 + int(rng.range(2));       // 2..3
    const int mem_budget_total = nthreads == 2 ? 6 : 7;

    litmus::LitmusBuilder builder(
        "random_" + std::to_string(seed), "generated");
    builder.location("a", litmus::LOC_A).location("b", litmus::LOC_B);

    int mem_ops = 0;
    for (int tid = 0; tid < nthreads; ++tid) {
        ProgramBuilder b;
        b.li(R(8), litmus::LOC_A).li(R(9), litmus::LOC_B);
        int next_reg = 1;
        isa::Reg last_val = R(0); // most recent value-holding register
        const int ops = 2 + int(rng.range(3)); // 2..4
        for (int i = 0; i < ops; ++i) {
            const isa::Reg loc = rng.chance(1, 2) ? R(8) : R(9);
            switch (rng.range(6)) {
              case 0: { // plain load
                isa::Reg dst = R(next_reg++);
                b.ld(dst, loc);
                last_val = dst;
                ++mem_ops;
                break;
              }
              case 1: { // store of a small constant
                isa::Reg v = R(next_reg++);
                b.li(v, 1 + int64_t(rng.range(2)));
                b.st(loc, v);
                ++mem_ops;
                break;
              }
              case 2: { // store of the last loaded value (data dep)
                b.st(loc, last_val);
                ++mem_ops;
                break;
              }
              case 3: { // artificially address-dependent load
                isa::Reg t = R(next_reg++);
                isa::Reg dst = R(next_reg++);
                b.xorr(t, last_val, last_val); // t = 0, carries the dep
                b.alu(isa::Opcode::ADD, t, t, loc);
                b.ld(dst, t);
                last_val = dst;
                ++mem_ops;
                break;
              }
              case 4: { // fence
                b.fence(isa::FenceKind(rng.range(4)));
                break;
              }
              default: { // atomic read-modify-write
                isa::Reg v = R(next_reg++);
                isa::Reg dst = R(next_reg++);
                b.li(v, 1 + int64_t(rng.range(2)));
                b.rmw(rng.chance(1, 2) ? isa::Opcode::AMOADD
                                       : isa::Opcode::AMOSWAP,
                      dst, loc, v);
                last_val = dst;
                ++mem_ops;
                break;
              }
            }
            if (mem_ops >= mem_budget_total)
                break;
        }
        builder.thread(b.build());
    }
    builder.requireReg(0, R(1), 0); // unused: engines compare full sets
    builder.expect(ModelKind::GAM, true);
    return builder.done();
}

std::string
diffOutcomes(const litmus::OutcomeSet &op, const litmus::OutcomeSet &ax)
{
    std::string s;
    for (const auto &o : op)
        if (!ax.count(o))
            s += "operational only: " + o.toString() + "\n";
    for (const auto &o : ax)
        if (!op.count(o))
            s += "axiomatic only: " + o.toString() + "\n";
    return s;
}

class Equivalence : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Equivalence, GamFamilyOperationalEqualsAxiomatic)
{
    LitmusTest test = randomTest(GetParam());
    for (ModelKind kind : {ModelKind::GAM, ModelKind::GAM0}) {
        operational::GamOptions opts;
        opts.kind = kind;
        auto op = operational::exploreAll(
            operational::GamMachine(test, opts));
        ASSERT_TRUE(op.complete) << "state budget too small";

        axiomatic::Checker checker(test, kind);
        auto ax = checker.enumerate();

        EXPECT_EQ(op.outcomes, ax)
            << test.toString() << "model " << model::modelName(kind)
            << "\n" << diffOutcomes(op.outcomes, ax);
    }
}

TEST_P(Equivalence, ArmOperationalIsSoundWrtAxioms)
{
    // The ARM machine is sound but conservative (no abstract machine
    // exists in the paper; see gam_machine.hh): every outcome it
    // reaches must be accepted by the SALdLdARM axioms.
    LitmusTest test = randomTest(GetParam());
    operational::GamOptions opts;
    opts.kind = ModelKind::ARM;
    auto op = operational::exploreAll(
        operational::GamMachine(test, opts));
    ASSERT_TRUE(op.complete) << "state budget too small";

    axiomatic::Checker checker(test, ModelKind::ARM);
    auto ax = checker.enumerate();
    for (const auto &o : op.outcomes) {
        EXPECT_TRUE(ax.count(o))
            << test.toString() << "operational-only ARM outcome: "
            << o.toString();
    }
    // Note: no GAM-vs-ARM set inclusion is asserted in either
    // direction.  The paper calls SALdLdARM "strictly weaker" than
    // SALdLd, which is true for real ARM (local store forwarding is
    // exempt) but not for the constraint as literally printed: without
    // the intervening-store exemption the two are incomparable
    // (Figure 14b separates them one way, Figure 14a the other).
}

TEST_P(Equivalence, ScOperationalEqualsAxiomatic)
{
    LitmusTest test = randomTest(GetParam());
    auto op = operational::exploreAll(operational::ScMachine(test));
    axiomatic::Checker checker(test, ModelKind::SC);
    auto ax = checker.enumerate();
    EXPECT_EQ(op.outcomes, ax)
        << test.toString() << diffOutcomes(op.outcomes, ax);
}

TEST_P(Equivalence, TsoOperationalEqualsAxiomatic)
{
    LitmusTest test = randomTest(GetParam());
    auto op = operational::exploreAll(operational::TsoMachine(test));
    axiomatic::Checker checker(test, ModelKind::TSO);
    auto ax = checker.enumerate();
    EXPECT_EQ(op.outcomes, ax)
        << test.toString() << diffOutcomes(op.outcomes, ax);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, Equivalence,
                         ::testing::Range(uint64_t(0), uint64_t(60)));

TEST(EquivalenceSuite, PaperTestsOperationalEqualsAxiomatic)
{
    // The full outcome-set equality also holds on every suite test
    // (not just the single asked-about condition).
    for (const auto &test : litmus::allTests()) {
        for (ModelKind kind : {ModelKind::GAM, ModelKind::GAM0}) {
            operational::GamOptions opts;
            opts.kind = kind;
            auto op = operational::exploreAll(
                operational::GamMachine(test, opts));
            if (!op.complete)
                continue; // outsized test: covered by verdict checks
            axiomatic::Checker checker(test, kind);
            auto ax = checker.enumerate();
            EXPECT_EQ(op.outcomes, ax)
                << test.name << " under " << model::modelName(kind)
                << "\n" << diffOutcomes(op.outcomes, ax);
        }
        // ARM: soundness (inclusion) on the suite.
        operational::GamOptions opts;
        opts.kind = ModelKind::ARM;
        auto op = operational::exploreAll(
            operational::GamMachine(test, opts));
        if (op.complete) {
            axiomatic::Checker checker(test, ModelKind::ARM);
            auto ax = checker.enumerate();
            for (const auto &o : op.outcomes) {
                EXPECT_TRUE(ax.count(o))
                    << test.name << " operational-only ARM outcome: "
                    << o.toString();
            }
        }
    }
}

} // namespace
} // namespace gam
