/** Unit tests for base utilities: RNG, stats, tables, logging. */

#include <gtest/gtest.h>

#include <set>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/table.hh"

namespace gam
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.range(13), 13u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.range(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        int64_t v = rng.rangeInclusive(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        double d = rng.uniform();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(rng.chance(10, 10));
        EXPECT_FALSE(rng.chance(0, 10));
    }
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(5);
    uint64_t first = rng.next();
    rng.next();
    rng.reseed(5);
    EXPECT_EQ(rng.next(), first);
}

TEST(Counter, IncrementAndAdd)
{
    Counter c("test");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, Moments)
{
    Distribution d("d");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.stddev(), 1.1180, 1e-3);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
}

TEST(StatGroup, SetAddGet)
{
    StatGroup g;
    g.set("a", 1.5);
    g.add("a", 2.5);
    g.add("b", 1.0);
    EXPECT_DOUBLE_EQ(g.get("a"), 4.0);
    EXPECT_DOUBLE_EQ(g.get("b"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
    EXPECT_TRUE(g.has("a"));
    EXPECT_FALSE(g.has("missing"));
}

TEST(SummaryStat, AvgMax)
{
    Summary s = Summary::of({1.0, 5.0, 3.0});
    EXPECT_DOUBLE_EQ(s.average, 3.0);
    EXPECT_DOUBLE_EQ(s.maximum, 5.0);
    Summary empty = Summary::of({});
    EXPECT_DOUBLE_EQ(empty.average, 0.0);
}

TEST(TableFormat, RendersHeaderAndRows)
{
    Table t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.separator();
    t.row({"longer-name", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TableFormat, NumPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Logging, FormatString)
{
    EXPECT_EQ(formatString("x=%d s=%s", 3, "hi"), "x=3 s=hi");
    EXPECT_EQ(formatString("%.2f", 1.5), "1.50");
}

} // namespace
} // namespace gam
