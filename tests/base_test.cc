/**
 * Unit tests for base utilities: RNG, hashing, thread pool, stats,
 * tables, logging.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "base/hashing.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/thread_pool.hh"

namespace gam
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.range(13), 13u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.range(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        int64_t v = rng.rangeInclusive(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        double d = rng.uniform();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(rng.chance(10, 10));
        EXPECT_FALSE(rng.chance(0, 10));
    }
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(5);
    uint64_t first = rng.next();
    rng.next();
    rng.reseed(5);
    EXPECT_EQ(rng.next(), first);
}

TEST(Rng, KnownSeedsPinnedOutputs)
{
    // Regression pin: the first outputs of known seeds.  The reseed()
    // collision guard must not perturb the stream for ordinary seeds,
    // so these values are identical to the original seeding scheme.
    struct Pin { uint64_t seed; uint64_t out[3]; };
    const Pin pins[] = {
        {0, {11091344671253066420ull, 13793997310169335082ull,
             1900383378846508768ull}},
        {1, {12966619160104079557ull, 9600361134598540522ull,
             10590380919521690900ull}},
        {42, {1546998764402558742ull, 6990951692964543102ull,
              12544586762248559009ull}},
        {0x9e3779b97f4a7c15ull,
         {4768932952251265552ull, 16168679545894742312ull,
          6487188721686299062ull}},
    };
    for (const auto &pin : pins) {
        Rng rng(pin.seed);
        for (uint64_t expected : pin.out)
            EXPECT_EQ(rng.next(), expected) << "seed " << pin.seed;
    }
}

TEST(Rng, EverySeedYieldsLiveState)
{
    // If reseed() ever produced the all-zero xoshiro state (its one
    // fixed point) next() would return 0 forever.  Sweep a batch of
    // seeds, including adversarial-looking ones, and require live,
    // non-constant output from each.
    std::vector<uint64_t> seeds;
    for (uint64_t s = 0; s < 256; ++s)
        seeds.push_back(s);
    for (uint64_t s : {~0ull, 0x8000000000000000ull,
                       0x5555555555555555ull, 0xaaaaaaaaaaaaaaaaull})
        seeds.push_back(s);
    for (uint64_t seed : seeds) {
        Rng rng(seed);
        std::set<uint64_t> outputs;
        for (int i = 0; i < 16; ++i)
            outputs.insert(rng.next());
        EXPECT_GT(outputs.size(), 14u) << "seed " << seed;
    }
}

TEST(Hashing, Mix64Avalanches)
{
    // Flipping one input bit must change many output bits.
    const uint64_t base = mix64(0x1234567890abcdefull);
    for (int bit = 0; bit < 64; ++bit) {
        uint64_t flipped = mix64(0x1234567890abcdefull ^ (1ull << bit));
        int diff = __builtin_popcountll(base ^ flipped);
        EXPECT_GT(diff, 10) << "bit " << bit;
    }
}

TEST(Hashing, CombineIsOrderSensitive)
{
    StateHasher a, b;
    a.add(1);
    a.add(2);
    b.add(2);
    b.add(1);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Hashing, SeparatorDisambiguatesSections)
{
    // {1,2 | }  vs  {1 | 2}: same words, different section split.
    StateHasher a, b;
    a.add(1);
    a.add(2);
    a.separator();
    b.add(1);
    b.separator();
    b.add(2);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Hashing, StringHashMatchesBytes)
{
    EXPECT_EQ(hashString("gam"), hashBytes("gam", 3));
    EXPECT_NE(hashString("gam"), hashString("gam "));
    EXPECT_NE(hashString(""), hashString(std::string_view("\0", 1)));
}

TEST(Hashing, UnorderedPairsIgnoresIterationOrder)
{
    std::vector<std::pair<uint64_t, int64_t>> fwd =
        {{1, 10}, {2, 20}, {3, 30}};
    std::vector<std::pair<uint64_t, int64_t>> rev(fwd.rbegin(),
                                                  fwd.rend());
    EXPECT_EQ(hashUnorderedPairs(fwd), hashUnorderedPairs(rev));
    fwd[0].second = 11;
    EXPECT_NE(hashUnorderedPairs(fwd), hashUnorderedPairs(rev));
}

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<int> slots(1000, 0);
    pool.parallelFor(slots.size(), [&](size_t i) { slots[i] = int(i); });
    // Every index written exactly to its own slot: deterministic merge.
    for (size_t i = 0; i < slots.size(); ++i)
        ASSERT_EQ(slots[i], int(i));
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    pool.parallelFor(10, [&](size_t i) { sum += long(i); });
    EXPECT_EQ(sum.load(), 45);
    pool.parallelFor(10, [&](size_t i) { sum += long(i); });
    EXPECT_EQ(sum.load(), 90);
}

TEST(ThreadPool, WaitWithNoTasksReturns)
{
    ThreadPool pool(1);
    pool.wait();
    EXPECT_EQ(pool.threadCount(), 1u);
}

TEST(Counter, IncrementAndAdd)
{
    Counter c("test");
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, Moments)
{
    Distribution d("d");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.stddev(), 1.1180, 1e-3);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
}

TEST(StatGroup, SetAddGet)
{
    StatGroup g;
    g.set("a", 1.5);
    g.add("a", 2.5);
    g.add("b", 1.0);
    EXPECT_DOUBLE_EQ(g.get("a"), 4.0);
    EXPECT_DOUBLE_EQ(g.get("b"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
    EXPECT_TRUE(g.has("a"));
    EXPECT_FALSE(g.has("missing"));
}

TEST(SummaryStat, AvgMax)
{
    Summary s = Summary::of({1.0, 5.0, 3.0});
    EXPECT_DOUBLE_EQ(s.average, 3.0);
    EXPECT_DOUBLE_EQ(s.maximum, 5.0);
    Summary empty = Summary::of({});
    EXPECT_DOUBLE_EQ(empty.average, 0.0);
}

TEST(TableFormat, RendersHeaderAndRows)
{
    Table t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.separator();
    t.row({"longer-name", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TableFormat, NumPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Logging, FormatString)
{
    EXPECT_EQ(formatString("x=%d s=%s", 3, "hi"), "x=3 s=hi");
    EXPECT_EQ(formatString("%.2f", 1.5), "1.50");
}

} // namespace
} // namespace gam
