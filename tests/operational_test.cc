/**
 * Tests for the abstract machines: rule-level behavior of the GAM
 * machine, explorer verdicts against the paper, SC/TSO machines, and
 * the eager-fetch exploration reduction.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "litmus/suite.hh"
#include "operational/explorer.hh"
#include "operational/state_set.hh"
#include "operational/gam_machine.hh"
#include "operational/sc_machine.hh"
#include "operational/tso_machine.hh"

namespace gam::operational
{
namespace
{

using isa::ProgramBuilder;
using isa::R;
using litmus::LitmusTest;
using litmus::testByName;
using model::ModelKind;

litmus::OutcomeSet
exploreModel(const LitmusTest &test, ModelKind kind,
             bool eager_fetch = true)
{
    if (kind == ModelKind::SC)
        return exploreAll(ScMachine(test)).outcomes;
    if (kind == ModelKind::TSO)
        return exploreAll(TsoMachine(test)).outcomes;
    GamOptions opts;
    opts.kind = kind;
    opts.eagerLocal = eager_fetch;
    return exploreAll(GamMachine(test, opts)).outcomes;
}

bool
allowed(const LitmusTest &test, ModelKind kind)
{
    for (const auto &o : exploreModel(test, kind))
        if (test.conditionMatches(o))
            return true;
    return false;
}

/** Explorer verdicts vs the paper, for every recorded model. */
class OperationalVerdict : public ::testing::TestWithParam<std::string>
{
};

TEST_P(OperationalVerdict, MatchesPaper)
{
    const LitmusTest &test = testByName(GetParam());
    for (const auto &[kind, expected] : test.expected) {
        if (kind == ModelKind::PerLocSC)
            continue; // a property, not a machine
        EXPECT_EQ(allowed(test, kind), expected)
            << test.name << " under " << model::modelName(kind);
    }
}

std::vector<std::string>
allTestNames()
{
    std::vector<std::string> names;
    for (const auto &t : litmus::allTests())
        names.push_back(t.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllLitmusTests, OperationalVerdict,
                         ::testing::ValuesIn(allTestNames()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (!isalnum(uint8_t(c)))
                                     c = '_';
                             return name;
                         });

TEST(GamMachineRules, SingleThreadRunsToCompletion)
{
    LitmusTest t = litmus::LitmusBuilder("t", "unit")
        .location("a", 0x1000)
        .thread(ProgramBuilder()
                    .li(R(8), 0x1000)
                    .li(R(1), 7)
                    .st(R(8), R(1))
                    .ld(R(2), R(8))
                    .build())
        .requireReg(0, R(2), 7)
        .expect(ModelKind::GAM, true)
        .done();
    auto result = exploreAll(GamMachine(t, {}));
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_TRUE(t.conditionMatches(*result.outcomes.begin()));
    EXPECT_TRUE(result.complete);
}

TEST(GamMachineRules, StoreForwardingSuppliesValue)
{
    // The load must be able to forward from the not-done store: with a
    // single thread the final value is 7 whichever path it takes, so
    // check the *rule* is offered by driving the machine manually.
    LitmusTest t = litmus::LitmusBuilder("t", "unit")
        .location("a", 0x1000)
        .thread(ProgramBuilder()
                    .li(R(8), 0x1000)
                    .li(R(1), 7)
                    .st(R(8), R(1))
                    .ld(R(2), R(8))
                    .build())
        .requireReg(0, R(2), 7)
        .expect(ModelKind::GAM, true)
        .done();

    GamOptions manual;
    manual.eagerLocal = false; // drive every rule kind by hand
    GamMachine m(t, manual);
    // Fetch everything, then resolve operands and addresses.
    auto fire_all_of = [&](GamRule::Kind kind) {
        bool fired = false;
        for (;;) {
            bool any = false;
            for (const auto &r : m.enabledRules()) {
                if (r.kind == kind) {
                    m.fire(r);
                    any = fired = true;
                    break;
                }
            }
            if (!any)
                break;
        }
        return fired;
    };
    EXPECT_TRUE(fire_all_of(GamRule::Fetch));
    EXPECT_TRUE(fire_all_of(GamRule::ExecRegToReg));
    EXPECT_TRUE(fire_all_of(GamRule::ComputeMemAddr));
    EXPECT_TRUE(fire_all_of(GamRule::ComputeStoreData));
    // The store has not executed; the load must still be executable by
    // forwarding (Figure 17 Execute-Load case 2).
    bool load_enabled = false;
    for (const auto &r : m.enabledRules())
        load_enabled |= r.kind == GamRule::ExecLoad;
    EXPECT_TRUE(load_enabled);
    EXPECT_TRUE(fire_all_of(GamRule::ExecLoad));
    EXPECT_TRUE(fire_all_of(GamRule::ExecStore));
    EXPECT_TRUE(m.terminal());
    EXPECT_TRUE(t.conditionMatches(m.outcome()));
}

TEST(GamMachineRules, GamStallsLoadBehindNotDoneSameAddressLoad)
{
    // Two same-address loads: under GAM the younger load's ExecLoad rule
    // must not be enabled while the older one is not done.
    LitmusTest t = litmus::LitmusBuilder("t", "unit")
        .location("a", 0x1000)
        .thread(ProgramBuilder()
                    .li(R(8), 0x1000)
                    .ld(R(1), R(8))
                    .ld(R(2), R(8))
                    .build())
        .requireReg(0, R(1), 0)
        .expect(ModelKind::GAM, true)
        .done();

    GamOptions gam_opts;
    gam_opts.kind = ModelKind::GAM;
    gam_opts.eagerLocal = false;
    GamMachine m(t, gam_opts);
    // Fetch all, execute the li, compute both load addresses.
    auto fire_kind = [&](GamRule::Kind kind, int count) {
        for (int i = 0; i < count; ++i) {
            for (const auto &r : m.enabledRules()) {
                if (r.kind == kind) {
                    m.fire(r);
                    break;
                }
            }
        }
    };
    fire_kind(GamRule::Fetch, 3);
    fire_kind(GamRule::ExecRegToReg, 1);
    fire_kind(GamRule::ComputeMemAddr, 2);

    int exec_load_rules = 0;
    uint16_t which = 0;
    for (const auto &r : m.enabledRules()) {
        if (r.kind == GamRule::ExecLoad) {
            ++exec_load_rules;
            which = r.idx;
        }
    }
    EXPECT_EQ(exec_load_rules, 1); // only the older load may execute
    EXPECT_EQ(which, 1);           // ROB index 1 = the older load
}

TEST(GamMachineRules, Gam0DoesNotStall)
{
    LitmusTest t = litmus::LitmusBuilder("t", "unit")
        .location("a", 0x1000)
        .thread(ProgramBuilder()
                    .li(R(8), 0x1000)
                    .ld(R(1), R(8))
                    .ld(R(2), R(8))
                    .build())
        .requireReg(0, R(1), 0)
        .expect(ModelKind::GAM0, true)
        .done();

    GamOptions opts;
    opts.kind = ModelKind::GAM0;
    opts.eagerLocal = false;
    GamMachine m(t, opts);
    auto fire_kind = [&](GamRule::Kind kind, int count) {
        for (int i = 0; i < count; ++i) {
            for (const auto &r : m.enabledRules()) {
                if (r.kind == kind) {
                    m.fire(r);
                    break;
                }
            }
        }
    };
    fire_kind(GamRule::Fetch, 3);
    fire_kind(GamRule::ExecRegToReg, 1);
    fire_kind(GamRule::ComputeMemAddr, 2);
    int exec_load_rules = 0;
    for (const auto &r : m.enabledRules())
        exec_load_rules += r.kind == GamRule::ExecLoad;
    EXPECT_EQ(exec_load_rules, 2); // both loads independently executable
}

TEST(Explorer, EagerFetchMatchesFullExploration)
{
    // The fetch-first reduction must not change outcome sets.
    for (const char *name : {"dekker", "corr", "lb", "mp", "mp_fenced",
                             "ld_interv_st"}) {
        const LitmusTest &t = testByName(name);
        for (ModelKind kind : {ModelKind::GAM, ModelKind::GAM0}) {
            auto eager = exploreModel(t, kind, true);
            auto full = exploreModel(t, kind, false);
            EXPECT_EQ(eager, full) << name << " under "
                                   << model::modelName(kind);
        }
    }
}

TEST(Explorer, ScMachineDekkerOutcomes)
{
    // Figure 2: exactly three SC outcomes.
    auto outcomes = exploreModel(testByName("dekker"), ModelKind::SC);
    EXPECT_EQ(outcomes.size(), 3u);
}

TEST(Explorer, RandomWalkIsSubsetOfExhaustive)
{
    const LitmusTest &t = testByName("mp");
    auto full = exploreModel(t, ModelKind::GAM);
    GamOptions opts;
    opts.kind = ModelKind::GAM;
    auto walk = randomWalk(GamMachine(t, opts), 50, 1234);
    const auto &sampled = walk.outcomes;
    EXPECT_EQ(walk.completed, 50u);
    EXPECT_EQ(walk.truncated, 0u);
    EXPECT_FALSE(sampled.empty());
    for (const auto &o : sampled)
        EXPECT_TRUE(full.count(o)) << "sampled outcome not reachable: "
                                   << o.toString();
}

TEST(Explorer, StateBudgetReportsIncomplete)
{
    auto result = exploreAll(GamMachine(testByName("rsw"), {}), 10);
    EXPECT_FALSE(result.complete);
}

TEST(Explorer, StateBudgetIsExact)
{
    // Truncation must be exact: statesVisited never exceeds the
    // budget, and a budget at least the full space size reports
    // complete with the same count as unbounded exploration.
    const GamMachine machine(testByName("rsw"), {});
    const auto full = exploreAll(machine);
    ASSERT_TRUE(full.complete);

    for (uint64_t budget : {uint64_t(1), uint64_t(10),
                            full.statesVisited / 2,
                            full.statesVisited}) {
        auto result = exploreAll(machine, budget);
        EXPECT_LE(result.statesVisited, budget) << "budget " << budget;
        if (budget < full.statesVisited) {
            EXPECT_FALSE(result.complete) << "budget " << budget;
            EXPECT_EQ(result.statesVisited, budget);
        } else {
            EXPECT_TRUE(result.complete);
            EXPECT_EQ(result.statesVisited, full.statesVisited);
        }
    }
}

TEST(Explorer, ParallelBudgetNeverExceeded)
{
    const GamMachine machine(testByName("rsw"), {});
    for (unsigned threads : {2u, 8u}) {
        auto result = exploreAllParallel(machine, threads, 50);
        EXPECT_LE(result.statesVisited, 50u);
        EXPECT_FALSE(result.complete);
    }
}

TEST(Explorer, RandomWalkStepCapReportsTruncation)
{
    // A 1-step cap cannot reach any terminal state of a real test, so
    // every trajectory must come back truncated instead of hanging.
    GamOptions opts;
    auto walk = randomWalk(GamMachine(testByName("mp"), opts), 8, 7, 1);
    EXPECT_EQ(walk.completed, 0u);
    EXPECT_EQ(walk.truncated, 8u);
    EXPECT_TRUE(walk.outcomes.empty());
}

TEST(Explorer, ParallelMatchesSerialOnEverySuiteTest)
{
    // The paper's equivalence claim rests on the explorer enumerating
    // the full outcome set; the parallel engine must agree with the
    // serial one exactly, on every suite test, at every team size.
    std::vector<litmus::LitmusTest> all = litmus::paperSuite();
    const auto &classics = litmus::classicSuite();
    all.insert(all.end(), classics.begin(), classics.end());

    for (const auto &test : all) {
        const GamMachine machine(test, {});
        const auto serial = exploreAll(machine);
        for (unsigned threads : {1u, 2u, 8u}) {
            auto parallel = exploreAllParallel(machine, threads);
            EXPECT_TRUE(parallel.complete);
            EXPECT_EQ(parallel.outcomes, serial.outcomes)
                << test.name << " with " << threads << " threads";
            EXPECT_EQ(parallel.statesVisited, serial.statesVisited)
                << test.name << " with " << threads << " threads";
        }
    }
}

TEST(Explorer, ParallelMatchesSerialOnScAndTso)
{
    for (const char *name : {"dekker", "mp", "iriw"}) {
        const litmus::LitmusTest &t = testByName(name);
        EXPECT_EQ(exploreAllParallel(ScMachine(t), 8).outcomes,
                  exploreAll(ScMachine(t)).outcomes) << name;
        EXPECT_EQ(exploreAllParallel(TsoMachine(t), 8).outcomes,
                  exploreAll(TsoMachine(t)).outcomes) << name;
    }
}

TEST(Explorer, InternedMatchesStringSetBaseline)
{
    // The compact fingerprint path and the seed's string-set baseline
    // must enumerate identical outcome sets and state counts.
    for (const char *name : {"dekker", "mp", "wrc_dep", "corr"}) {
        const GamMachine machine(testByName(name), {});
        auto interned = exploreAll(machine);
        auto baseline = exploreAllStringSet(machine);
        EXPECT_EQ(interned.outcomes, baseline.outcomes) << name;
        EXPECT_EQ(interned.statesVisited, baseline.statesVisited)
            << name;
    }
}

TEST(Explorer, FingerprintIsStableAndDiscriminates)
{
    const litmus::LitmusTest &t = testByName("mp");
    GamMachine a(t, {});
    GamMachine b = a;
    EXPECT_EQ(stateFingerprint(a), stateFingerprint(b));
    // Fire one rule: the successor state must fingerprint differently.
    auto rules = b.enabledRules();
    ASSERT_FALSE(rules.empty());
    b.fire(rules[0]);
    EXPECT_NE(stateFingerprint(a), stateFingerprint(b));
}

TEST(StateSet, InsertAndDeduplicate)
{
    StateSet set;
    EXPECT_TRUE(set.insert(42));
    EXPECT_FALSE(set.insert(42));
    EXPECT_TRUE(set.contains(42));
    EXPECT_FALSE(set.contains(7));
    EXPECT_EQ(set.size(), 1u);
    // Key 0 collides with the internal empty marker and must still
    // round-trip.
    EXPECT_TRUE(set.insert(0));
    EXPECT_FALSE(set.insert(0));
    EXPECT_TRUE(set.contains(0));
}

TEST(StateSet, GrowsPastInitialCapacity)
{
    StateSet set(16);
    Rng rng(99);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 10000; ++i)
        keys.push_back(rng.next());
    for (uint64_t k : keys)
        set.insert(k);
    // Duplicates in the stream are possible but astronomically
    // unlikely; all keys must be present afterwards either way.
    for (uint64_t k : keys)
        EXPECT_TRUE(set.contains(k));
    EXPECT_LE(set.size(), keys.size());
    EXPECT_GT(set.size(), keys.size() - 3);
}

TEST(StateSet, ConcurrentInsertsAreExactlyOnce)
{
    // Every key inserted from many threads must be claimed by exactly
    // one inserter, and the final size must be deterministic.
    ConcurrentStateSet set;
    constexpr int NumKeys = 20000;
    std::atomic<int> claimed{0};
    std::vector<std::thread> team;
    for (int w = 0; w < 8; ++w) {
        team.emplace_back([&] {
            for (uint64_t k = 1; k <= NumKeys; ++k)
                if (set.insert(mix64(k)))
                    ++claimed;
        });
    }
    for (auto &t : team)
        t.join();
    EXPECT_EQ(claimed.load(), NumKeys);
    EXPECT_EQ(set.size(), size_t(NumKeys));
}

TEST(TsoMachineTest, StoreBufferForwardsOwnStore)
{
    // corw-style: a thread sees its own buffered store.
    LitmusTest t = litmus::LitmusBuilder("t", "unit")
        .location("a", 0x1000)
        .thread(ProgramBuilder()
                    .li(R(8), 0x1000)
                    .li(R(1), 5)
                    .st(R(8), R(1))
                    .ld(R(2), R(8))
                    .build())
        .requireReg(0, R(2), 5)
        .expect(ModelKind::TSO, true)
        .done();
    auto outcomes = exploreAll(TsoMachine(t)).outcomes;
    for (const auto &o : outcomes)
        EXPECT_TRUE(t.conditionMatches(o));
}

TEST(TsoMachineTest, DekkerWeakOutcomeReachable)
{
    EXPECT_TRUE(allowed(testByName("dekker"), ModelKind::TSO));
}

TEST(TsoMachineTest, FenceSlDrains)
{
    EXPECT_FALSE(allowed(testByName("sb_fenced"), ModelKind::TSO));
}

TEST(GamMachineRules, RuleToStringReadable)
{
    GamRule r{0, GamRule::ExecLoad, 3, 0};
    EXPECT_EQ(r.toString(), "P0.ExecLoad[3]");
    GamRule f{1, GamRule::Fetch, 0, 1};
    EXPECT_EQ(f.toString(), "P1.Fetch/alt");
}

TEST(GamMachineRules, AlphaStarOffersLoadLoadForwarding)
{
    // After an older same-address load is done, Alpha* offers the /alt
    // ExecLoad choice for the younger load.
    const LitmusTest &t = testByName("corr");
    GamOptions opts;
    opts.kind = ModelKind::AlphaStar;
    auto outcomes = exploreAll(GamMachine(t, opts)).outcomes;
    // Alpha* must allow the CoRR violation via stale forwarding.
    bool weak = false;
    for (const auto &o : outcomes)
        weak |= t.conditionMatches(o);
    EXPECT_TRUE(weak);
}

} // namespace
} // namespace gam::operational
