/**
 * Tests for the axiomatic checker: every paper-documented litmus
 * verdict, SC enumeration exactness, and the OOTA demonstration.
 */

#include <gtest/gtest.h>

#include <set>

#include "axiomatic/checker.hh"
#include "litmus/suite.hh"

namespace gam::axiomatic
{
namespace
{

using isa::R;
using litmus::LitmusTest;
using litmus::testByName;
using model::ModelKind;

/** Every litmus verdict the paper (or the model definitions) records. */
class AxiomaticVerdict : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AxiomaticVerdict, MatchesPaper)
{
    const LitmusTest &test = testByName(GetParam());
    for (const auto &[kind, expected] : test.expected) {
        if (kind == ModelKind::AlphaStar)
            continue; // no axiomatic definition (paper Section V-A)
        Checker checker(test, kind);
        EXPECT_EQ(checker.isAllowed(), expected)
            << test.name << " under " << model::modelName(kind);
    }
}

std::vector<std::string>
allTestNames()
{
    std::vector<std::string> names;
    for (const auto &t : litmus::allTests())
        names.push_back(t.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllLitmusTests, AxiomaticVerdict,
                         ::testing::ValuesIn(allTestNames()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (!isalnum(uint8_t(c)))
                                     c = '_';
                             return name;
                         });

/** Project an outcome set onto two observed registers. */
std::set<std::pair<isa::Value, isa::Value>>
project(const litmus::OutcomeSet &outcomes, int tid1, isa::Reg r1,
        int tid2, isa::Reg r2)
{
    std::set<std::pair<isa::Value, isa::Value>> s;
    for (const auto &o : outcomes) {
        isa::Value v1 = 0, v2 = 0;
        for (const auto &ro : o.regs) {
            if (ro.tid == tid1 && ro.reg == r1)
                v1 = ro.value;
            if (ro.tid == tid2 && ro.reg == r2)
                v2 = ro.value;
        }
        s.insert({v1, v2});
    }
    return s;
}

TEST(AxiomaticEnumeration, DekkerUnderScIsExactlyThreeOutcomes)
{
    // Figure 2: SC allows (1,1), (0,1), (1,0) and forbids (0,0).
    Checker checker(testByName("dekker"), ModelKind::SC);
    auto outcomes = project(checker.enumerate(), 0, R(1), 1, R(2));
    std::set<std::pair<isa::Value, isa::Value>> want{
        {1, 1}, {0, 1}, {1, 0}};
    EXPECT_EQ(outcomes, want);
}

TEST(AxiomaticEnumeration, DekkerUnderGamAddsTheWeakOutcome)
{
    Checker checker(testByName("dekker"), ModelKind::GAM);
    auto outcomes = project(checker.enumerate(), 0, R(1), 1, R(2));
    std::set<std::pair<isa::Value, isa::Value>> want{
        {1, 1}, {0, 1}, {1, 0}, {0, 0}};
    EXPECT_EQ(outcomes, want);
}

TEST(AxiomaticEnumeration, CowwFinalMemory)
{
    // Both co orders of two same-thread same-address stores would be
    // enumerated, but SAMemSt forces program order: final value is 2.
    Checker checker(testByName("coww"), ModelKind::GAM);
    auto outcomes = checker.enumerate();
    ASSERT_EQ(outcomes.size(), 1u);
    for (const auto &m : outcomes.begin()->mem) {
        if (m.addr == litmus::LOC_A) {
            EXPECT_EQ(m.value, 2);
        }
    }
}

TEST(AxiomaticEnumeration, MpOutcomeCount)
{
    // MP without fences under GAM: all four (r1, r2) combinations.
    Checker checker(testByName("mp"), ModelKind::GAM);
    auto outcomes = project(checker.enumerate(), 1, R(1), 1, R(2));
    EXPECT_EQ(outcomes.size(), 4u);
}

TEST(AxiomaticEnumeration, MpFencedRemovesOnlyTheWeakOutcome)
{
    Checker checker(testByName("mp_fenced"), ModelKind::GAM);
    auto outcomes = project(checker.enumerate(), 1, R(1), 1, R(2));
    std::set<std::pair<isa::Value, isa::Value>> want{
        {0, 0}, {0, 1}, {1, 1}};
    EXPECT_EQ(outcomes, want);
}

TEST(AxiomaticOota, LoadValueAloneAdmitsOota)
{
    // Section II-C: dropping the instruction-order axiom (keeping only
    // LoadValue) makes the out-of-thin-air behavior legal.
    Options opts;
    opts.enforceInstOrder = false;
    Checker checker(testByName("oota"), ModelKind::GAM, opts);
    EXPECT_TRUE(checker.isAllowed());
}

TEST(AxiomaticOota, InstOrderRejectsOota)
{
    Checker checker(testByName("oota"), ModelKind::GAM);
    EXPECT_FALSE(checker.isAllowed());
    // The cyclic value candidates were actually considered.
    EXPECT_GT(checker.stats().rfCandidates, 0u);
}

TEST(AxiomaticStats, CountersAreConsistent)
{
    Checker checker(testByName("dekker"), ModelKind::GAM);
    checker.enumerate();
    const CheckerStats &s = checker.stats();
    EXPECT_GT(s.rfCandidates, 0u);
    EXPECT_GE(s.rfCandidates, s.valueConsistent);
    EXPECT_GE(s.coCandidates, s.accepted);
    EXPECT_GT(s.accepted, 0u);
}

TEST(AxiomaticChecker, PerLocScForbidsCoRR)
{
    Checker checker(testByName("corr"), ModelKind::PerLocSC);
    EXPECT_FALSE(checker.isAllowed());
}

TEST(AxiomaticChecker, PerLocScIgnoresFences)
{
    // mp_fenced is still allowed under per-location SC: fences order
    // nothing across addresses there.
    Checker checker(testByName("mp_fenced"), ModelKind::PerLocSC);
    EXPECT_TRUE(checker.isAllowed());
}

TEST(AxiomaticChecker, RejectsBackwardBranches)
{
    using isa::ProgramBuilder;
    litmus::LitmusTest t = litmus::LitmusBuilder("bad", "none")
        .location("a", 0x1000)
        .thread(ProgramBuilder()
                    .label("top")
                    .addi(R(1), R(1), 1)
                    .jmp("top")
                    .build())
        .requireReg(0, R(1), 1)
        .expect(ModelKind::GAM, false)
        .done();
    EXPECT_DEATH({ Checker c(t, ModelKind::GAM); }, "forward branches");
}

} // namespace
} // namespace gam::axiomatic
