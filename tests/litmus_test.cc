/** Unit tests for the litmus-test infrastructure and suite integrity. */

#include <gtest/gtest.h>

#include <set>

#include "litmus/outcome.hh"
#include "litmus/suite.hh"
#include "litmus/test.hh"

namespace gam::litmus
{
namespace
{

using isa::R;
using model::ModelKind;

TEST(OutcomeTest, CanonicalizeSorts)
{
    Outcome o;
    o.regs.push_back({1, R(2), 5});
    o.regs.push_back({0, R(1), 3});
    o.canonicalize();
    EXPECT_EQ(o.regs[0].tid, 0);
    EXPECT_EQ(o.regs[1].tid, 1);
}

TEST(OutcomeTest, EqualityAndOrdering)
{
    Outcome a, b;
    a.regs.push_back({0, R(1), 1});
    b.regs.push_back({0, R(1), 2});
    EXPECT_NE(a, b);
    EXPECT_LT(a, b);
    b.regs[0].value = 1;
    EXPECT_EQ(a, b);
}

TEST(OutcomeTest, ToStringFormat)
{
    Outcome o;
    o.regs.push_back({0, R(1), 7});
    o.mem.push_back({0x1000, 3});
    EXPECT_EQ(o.toString(), "0:r1=7 | [0x1000]=3");
}

TEST(LitmusTestType, ConditionMatching)
{
    const LitmusTest &t = testByName("dekker");
    Outcome hit;
    hit.regs.push_back({0, R(1), 0});
    hit.regs.push_back({1, R(2), 0});
    EXPECT_TRUE(t.conditionMatches(hit));
    Outcome miss = hit;
    miss.regs[0].value = 1;
    EXPECT_FALSE(t.conditionMatches(miss));
}

TEST(LitmusTestType, ConditionRequiresObservation)
{
    const LitmusTest &t = testByName("dekker");
    Outcome empty;
    EXPECT_FALSE(t.conditionMatches(empty));
}

TEST(LitmusTestType, MemCondition)
{
    const LitmusTest &t = testByName("coww");
    Outcome o;
    o.mem.push_back({LOC_A, 1});
    EXPECT_TRUE(t.conditionMatches(o));
    o.mem[0].value = 2;
    EXPECT_FALSE(t.conditionMatches(o));
}

TEST(Suite, PaperSuiteComplete)
{
    // Every litmus test printed in the paper is present.
    std::set<std::string> names;
    for (const auto &t : paperSuite())
        names.insert(t.name);
    for (const char *required :
         {"dekker", "oota", "mp_addr", "mp_artificial_addr", "mp_mem_dep",
          "mp_prefetch", "corr", "ld_interv_st", "rsw", "rnsw"}) {
        EXPECT_TRUE(names.count(required)) << required;
    }
}

TEST(Suite, UniqueNames)
{
    std::set<std::string> names;
    for (const auto &t : allTests()) {
        EXPECT_TRUE(names.insert(t.name).second)
            << "duplicate litmus name " << t.name;
    }
}

TEST(Suite, EveryTestFinalized)
{
    for (const auto &t : allTests()) {
        EXPECT_FALSE(t.threads.empty()) << t.name;
        EXPECT_FALSE(t.observedRegs.empty()) << t.name;
        EXPECT_FALSE(t.expected.empty()) << t.name;
        EXPECT_FALSE(t.regCond.empty() && t.memCond.empty()) << t.name;
    }
}

TEST(Suite, PaperVerdictsRecorded)
{
    // Key claims from the paper's figures.
    EXPECT_FALSE(testByName("corr").expected.at(ModelKind::GAM));
    EXPECT_TRUE(testByName("corr").expected.at(ModelKind::GAM0));
    EXPECT_FALSE(testByName("corr").expected.at(ModelKind::ARM));
    EXPECT_TRUE(testByName("rsw").expected.at(ModelKind::ARM));
    EXPECT_FALSE(testByName("rsw").expected.at(ModelKind::GAM));
    EXPECT_FALSE(testByName("rnsw").expected.at(ModelKind::ARM));
    EXPECT_TRUE(testByName("dekker").expected.at(ModelKind::TSO));
    EXPECT_FALSE(testByName("dekker").expected.at(ModelKind::SC));
    EXPECT_TRUE(testByName("ld_interv_st").expected.at(ModelKind::GAM));
    EXPECT_TRUE(
        testByName("ld_interv_st").expected.at(ModelKind::PerLocSC));
}

TEST(Suite, ObservedRegsCoverConditions)
{
    for (const auto &t : allTests()) {
        for (const auto &rc : t.regCond) {
            bool covered = false;
            for (auto [tid, reg] : t.observedRegs)
                covered |= tid == rc.tid && reg == rc.reg;
            EXPECT_TRUE(covered)
                << t.name << " observes " << int(rc.reg);
        }
    }
}

TEST(Suite, AddressUniverseCoversMemConditions)
{
    for (const auto &t : allTests()) {
        for (const auto &mc : t.memCond) {
            bool covered = false;
            for (isa::Addr a : t.addressUniverse)
                covered |= a == mc.addr;
            EXPECT_TRUE(covered) << t.name;
        }
    }
}

TEST(Suite, LookupByNameFindsClassics)
{
    EXPECT_EQ(testByName("lb").name, "lb");
    EXPECT_EQ(testByName("iriw_fenced").threads.size(), 4u);
    EXPECT_EQ(testByName("wrc_dep").threads.size(), 3u);
}

TEST(Suite, BuilderProducesWorkingTest)
{
    using isa::ProgramBuilder;
    LitmusTest t = LitmusBuilder("tmp", "none")
        .location("x", 0x4000)
        .thread(ProgramBuilder().li(R(1), 1).build())
        .requireReg(0, R(1), 1)
        .expect(ModelKind::SC, true)
        .done();
    EXPECT_EQ(t.threads.size(), 1u);
    EXPECT_EQ(t.addressUniverse.size(), 1u);
    EXPECT_FALSE(t.observedRegs.empty());
}

TEST(Suite, ToStringMentionsThreads)
{
    std::string s = testByName("dekker").toString();
    EXPECT_NE(s.find("thread 0"), std::string::npos);
    EXPECT_NE(s.find("thread 1"), std::string::npos);
    EXPECT_NE(s.find("condition:"), std::string::npos);
}

} // namespace
} // namespace gam::litmus
