/**
 * Tests for the CanonicalForm::Full symmetry quotient
 * (campaign/symmetry.hh): isomorphic and decoration-equivalent specs
 * canonicalize to byte-identical representatives, the quotient's
 * universe counts are pinned next to the rotation-only counts, every
 * emitted representative is a canonicalCycleFull() fixpoint, and the
 * quotient preserves verdicts -- exactly up to the pre-existing
 * rotation-witness orientation artifact, which is pinned too.
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/enumerate.hh"
#include "campaign/symmetry.hh"
#include "harness/decision.hh"
#include "litmus/generator.hh"
#include "litmus/test.hh"
#include "model/engine.hh"

namespace gam::campaign
{
namespace
{

using litmus::CycleEdge;
using model::ModelKind;
using Kind = CycleEdge::Kind;

CycleEdge
edge(Kind kind, int loc_step = 1)
{
    CycleEdge e;
    e.kind = kind;
    e.locStep = loc_step;
    return e;
}

CycleEdge
fence(isa::FenceKind kind)
{
    CycleEdge e;
    e.kind = Kind::PoFence;
    e.fence = kind;
    return e;
}

/** Rotate @p edges left by @p by. */
std::vector<CycleEdge>
rotated(const std::vector<CycleEdge> &edges, size_t by)
{
    std::vector<CycleEdge> out(edges.begin() + by, edges.end());
    out.insert(out.end(), edges.begin(), edges.begin() + by);
    return out;
}

void
expectSameClass(const std::vector<CycleEdge> &a,
                const std::vector<CycleEdge> &b, int locations,
                const std::string &what)
{
    auto ca = canonicalCycleFull(a, locations);
    auto cb = canonicalCycleFull(b, locations);
    ASSERT_TRUE(ca.has_value()) << what;
    ASSERT_TRUE(cb.has_value()) << what;
    EXPECT_EQ(ca->key, cb->key) << what;
    EXPECT_EQ(ca->name, cb->name) << what;
    ASSERT_EQ(ca->edges.size(), cb->edges.size()) << what;
    // Identical representatives lower to identical tests.
    auto ta = litmus::testFromCycle(ca->name, ca->edges, ca->numLocations);
    auto tb = litmus::testFromCycle(cb->name, cb->edges, cb->numLocations);
    ASSERT_TRUE(ta.has_value()) << what;
    ASSERT_TRUE(tb.has_value()) << what;
    EXPECT_EQ(litmus::fingerprint(*ta), litmus::fingerprint(*tb)) << what;
}

// ----------------------------------------------------- isomorphism

TEST(Symmetry, ClassicShapesCanonicalizeWithTheirIsomorphs)
{
    // SB: two store-buffering threads.  Rotating by a thread permutes
    // the threads (and renames the locations with them); reversing the
    // edge list is the palindromic reflection.
    const std::vector<CycleEdge> sb = {
        edge(Kind::Po), edge(Kind::Fre, 0), edge(Kind::Po),
        edge(Kind::Fre, 0)};
    expectSameClass(sb, rotated(sb, 2), 2, "sb thread-permuted");
    expectSameClass(sb, {sb.rbegin(), sb.rend()}, 2, "sb reflected");

    // 2+2W, the other palindrome.
    const std::vector<CycleEdge> w22 = {
        edge(Kind::Po), edge(Kind::Coe, 0), edge(Kind::Po),
        edge(Kind::Coe, 0)};
    expectSameClass(w22, rotated(w22, 2), 2, "2+2w thread-permuted");
    expectSameClass(w22, {w22.rbegin(), w22.rend()}, 2, "2+2w reflected");

    // IRIW: permuting the two reader threads rotates by half.
    const std::vector<CycleEdge> iriw = {
        edge(Kind::Rfe, 0), edge(Kind::Po), edge(Kind::Fre, 0),
        edge(Kind::Rfe, 0), edge(Kind::Po), edge(Kind::Fre, 0)};
    expectSameClass(iriw, rotated(iriw, 3), 2, "iriw thread-permuted");

    // WRC: every rotation -- comm-ending or not -- names the same
    // cycle, including ones starting mid-thread.
    const std::vector<CycleEdge> wrc = {
        edge(Kind::Rfe, 0), edge(Kind::Po), edge(Kind::Rfe, 0),
        edge(Kind::Po), edge(Kind::Fre, 0)};
    for (size_t by = 1; by < wrc.size(); ++by)
        expectSameClass(wrc, rotated(wrc, by), 2,
                        "wrc rotated by " + std::to_string(by));
}

TEST(Symmetry, LoadLoadDecorationsCollapseBySignature)
{
    // Between two loads of different locations: a load-load fence and
    // an address dependency induce the same ordering closure under
    // both pair semantics, a control dependency (no later store to
    // order) the same as plain po.
    using litmus::CycleEventKind;
    const std::vector<CycleEventKind> kinds = {CycleEventKind::Load,
                                               CycleEventKind::Load};
    const std::vector<int> locs = {0, 1};
    const auto plain = threadOrderSignature(kinds, locs, {0});
    const auto fll = threadOrderSignature(kinds, locs, {1});
    const auto addr = threadOrderSignature(kinds, locs, {5});
    const auto ctrl = threadOrderSignature(kinds, locs, {7});
    EXPECT_EQ(fll, addr);
    EXPECT_EQ(plain, ctrl);
    EXPECT_NE(plain, fll);
    // TSO orders load->load regardless; only the GAM family
    // distinguishes the decorated pair.
    EXPECT_EQ(plain.tso, fll.tso);
    EXPECT_NE(plain.gamFamily, fll.gamFamily);
}

TEST(Symmetry, EquivalentDecorationsShareOneRepresentative)
{
    // MP with an address dependency on the reader thread and MP with a
    // load-load fence are the same class; the fence spelling (lowest
    // variant id) is the representative.
    const std::vector<CycleEdge> mp_addr = {
        edge(Kind::Po), edge(Kind::Rfe, 0), edge(Kind::PoAddr),
        edge(Kind::Fre, 0)};
    const std::vector<CycleEdge> mp_fll = {
        edge(Kind::Po), edge(Kind::Rfe, 0), fence(isa::FenceKind::LL),
        edge(Kind::Fre, 0)};
    expectSameClass(mp_addr, mp_fll, 2, "mp addr ~ fll");
    const auto rep = canonicalCycleFull(mp_addr, 2);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->name, "camp_pob_rfeb_flla_frea");

    // A bare control dependency between the loads orders nothing any
    // model can see: the class representative is plain MP.
    const std::vector<CycleEdge> mp_ctrl = {
        edge(Kind::Po), edge(Kind::Rfe, 0), edge(Kind::PoCtrl),
        edge(Kind::Fre, 0)};
    const auto plain = canonicalCycleFull(mp_ctrl, 2);
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(plain->name, "camp_pob_rfeb_poa_frea");
    EXPECT_NE(plain->key, rep->key);
}

TEST(Symmetry, VacuousInteriorLoadContractsAway)
{
    // MP whose reader interposes a plain-po load of a location no one
    // stores to: the Shasha-Snir critical core is MP itself, one edge
    // shorter and one location narrower.
    const std::vector<CycleEdge> fat = {
        edge(Kind::Po), edge(Kind::Rfe, 0), edge(Kind::Po),
        edge(Kind::Po), edge(Kind::Fre, 0)};
    const std::vector<CycleEdge> mp = {
        edge(Kind::Po), edge(Kind::Rfe, 0), edge(Kind::Po),
        edge(Kind::Fre, 0)};
    const auto contracted = canonicalCycleFull(fat, 3);
    const auto plain = canonicalCycleFull(mp, 2);
    ASSERT_TRUE(contracted.has_value());
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(contracted->key, plain->key);
    EXPECT_EQ(contracted->name, plain->name);
    EXPECT_EQ(contracted->edges.size(), 4u);
    EXPECT_EQ(contracted->numLocations, 2);
}

// ------------------------------------------------- universe counts

TEST(Symmetry, PinsQuotientCountsAgainstRotationOnly)
{
    // The exact universe sizes per length bound, Rotation vs Full.
    // Any change to either quotient shows up here first; the ISSUE
    // gate is the len<=6 shrink (182,659 / 42,658 = 4.28x >= 1.5x).
    const struct
    {
        int maxLen;
        uint64_t rotation;
        uint64_t full;
    } pinned[] = {
        {3, 56, 34},
        {4, 905, 397},
        {5, 14'061, 4'433},
        {6, 182'659, 42'658},
    };
    for (const auto &p : pinned) {
        for (CanonicalForm form :
             {CanonicalForm::Rotation, CanonicalForm::Full}) {
            EnumerateOptions o;
            o.maxLen = p.maxLen;
            o.canonical = form;
            const EnumerateStats st =
                enumerateCycles(o, [](const CanonicalCycle &) {
                    return true;
                });
            const uint64_t want =
                form == CanonicalForm::Full ? p.full : p.rotation;
            EXPECT_EQ(st.emitted, want)
                << "len<=" << p.maxLen << " form "
                << (form == CanonicalForm::Full ? "full" : "rotation");
            // The two forms walk the same rotation-canonical stream;
            // Full just rejects non-representatives.
            EXPECT_EQ(st.emitted + st.symmetryDuplicates, p.rotation)
                << "len<=" << p.maxLen;
        }
    }
    // The headline shrink the campaign README advertises.
    EXPECT_GE(double(182'659) / double(42'658), 1.5);
}

TEST(Symmetry, EveryEmittedRepresentativeIsAFixpoint)
{
    EnumerateOptions o;
    o.maxLen = 4;
    o.canonical = CanonicalForm::Full;
    uint64_t checked = 0;
    enumerateCycles(o, [&](const CanonicalCycle &c) {
        const auto again = canonicalCycleFull(c.edges, c.numLocations);
        EXPECT_TRUE(again.has_value()) << c.name;
        if (again) {
            EXPECT_EQ(again->key, c.key) << c.name;
            EXPECT_EQ(again->name, c.name) << c.name;
        }
        EXPECT_TRUE(isFullCanonical(c.edges, c.numLocations, o))
            << c.name;
        ++checked;
        return true;
    });
    EXPECT_EQ(checked, 397u);
}

// ------------------------------------------------- verdict parity

constexpr ModelKind paritied[] = {
    ModelKind::SC,  ModelKind::TSO, ModelKind::GAM0,
    ModelKind::GAM, ModelKind::ARM, ModelKind::PerLocSC,
};

bool
decideAllowed(const litmus::LitmusTest &test, ModelKind model,
              harness::DecisionCache &cache)
{
    harness::Query q;
    q.test = &test;
    q.model = model;
    q.engine = harness::EngineSelect::Axiomatic;
    return harness::decide(q, &cache).allowed;
}

TEST(Symmetry, QuotientPreservesEveryVerdictAtLengthFour)
{
    // Every rotation-canonical cycle up to length 4 decides exactly as
    // its Full-class representative does, under every axiomatic model.
    // (At length 5 the rotation-witness artifact below kicks in; up to
    // 4 the parity is exact, and this pins it.)
    EnumerateOptions o;
    o.maxLen = 4;
    harness::DecisionCache cache(1 << 16);
    uint64_t compared = 0;
    enumerateCycles(o, [&](const CanonicalCycle &member) {
        const auto rep =
            canonicalCycleFull(member.edges, member.numLocations);
        EXPECT_TRUE(rep.has_value()) << member.name;
        if (!rep)
            return true;
        const auto member_test = litmus::testFromCycle(
            member.name, member.edges, member.numLocations);
        const auto rep_test = litmus::testFromCycle(
            rep->name, rep->edges, rep->numLocations);
        EXPECT_TRUE(member_test.has_value()) << member.name;
        EXPECT_TRUE(rep_test.has_value()) << rep->name;
        if (!member_test || !rep_test)
            return true;
        for (ModelKind model : paritied)
            EXPECT_EQ(decideAllowed(*member_test, model, cache),
                      decideAllowed(*rep_test, model, cache))
                << member.name << " vs " << rep->name << " under "
                << model::modelName(model);
        ++compared;
        return true;
    });
    EXPECT_EQ(compared, 905u);
}

TEST(Symmetry, RotationWitnessOrientationArtifactIsPreExisting)
{
    // The documented parity caveat (symmetry.hh): the lowering's
    // final-memory values orient coe-free same-location store pairs by
    // walk order, a per-rotation choice -- not a property Full
    // introduced.  Witness: two comm-ending rotations of one and the
    // same length-5 rotation-canonical cycle already decide
    // differently under PerLocSC.
    EnumerateOptions o;
    o.minLen = 5;
    o.maxLen = 5;
    std::optional<CanonicalCycle> target;
    enumerateCycles(o, [&](const CanonicalCycle &c) {
        if (c.name == "camp_data_fssb_coeb_data_rfea") {
            target = c;
            return false;
        }
        return true;
    });
    ASSERT_TRUE(target.has_value());

    harness::DecisionCache cache(1 << 12);
    std::vector<bool> verdicts;
    for (size_t by = 0; by < target->edges.size(); ++by) {
        const auto rot = rotated(target->edges, by);
        const Kind last = rot.back().kind;
        if (last != Kind::Rfe && last != Kind::Coe && last != Kind::Fre)
            continue; // the lowering takes comm-ending rotations
        const auto test = litmus::testFromCycle(
            "rot" + std::to_string(by), rot, target->numLocations);
        ASSERT_TRUE(test.has_value()) << by;
        verdicts.push_back(
            decideAllowed(*test, ModelKind::PerLocSC, cache));
    }
    ASSERT_EQ(verdicts.size(), 2u);
    EXPECT_NE(verdicts[0], verdicts[1]);
}

} // namespace
} // namespace gam::campaign
