/** Tests for the synthetic workload suite. */

#include <gtest/gtest.h>

#include "isa/emulator.hh"
#include "sim/trace_gen.hh"
#include "workload/workloads.hh"

namespace gam::workload
{
namespace
{

class WorkloadCheck : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadCheck, BuildsAndCompletes)
{
    const WorkloadSpec &spec = workloadByName(GetParam());
    BuiltWorkload built = spec.build();
    EXPECT_FALSE(built.program.empty());

    sim::DynTrace trace = sim::generateTrace(built.program, built.mem,
                                             spec.maxUops);
    // The program must halt within its stated uop budget and be large
    // enough to be a meaningful benchmark.
    EXPECT_TRUE(trace.programCompleted) << spec.name;
    EXPECT_GT(trace.uops.size(), 50000u) << spec.name;
    EXPECT_LT(trace.uops.size(), spec.maxUops) << spec.name;
}

TEST_P(WorkloadCheck, Deterministic)
{
    const WorkloadSpec &spec = workloadByName(GetParam());
    BuiltWorkload a = spec.build();
    BuiltWorkload b = spec.build();
    ASSERT_EQ(a.program.size(), b.program.size());
    for (size_t i = 0; i < a.program.size(); ++i)
        EXPECT_TRUE(a.program[i] == b.program[i]) << spec.name;
    EXPECT_TRUE(a.mem == b.mem) << spec.name;
}

std::vector<std::string>
names()
{
    std::vector<std::string> v;
    for (const auto &w : workloadSuite())
        v.push_back(w.name);
    return v;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadCheck,
                         ::testing::ValuesIn(names()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadSuiteTest, SixteenWorkloads)
{
    EXPECT_EQ(workloadSuite().size(), 16u);
}

TEST(WorkloadSuiteTest, UniqueNames)
{
    std::set<std::string> seen;
    for (const auto &w : workloadSuite())
        EXPECT_TRUE(seen.insert(w.name).second) << w.name;
}

TEST(WorkloadSuiteTest, MemoryTouchesMatchEmulator)
{
    // The trace's final state is the emulator's final state.
    const WorkloadSpec &spec = workloadByName("histogram");
    BuiltWorkload built = spec.build();
    sim::DynTrace trace = sim::generateTrace(built.program, built.mem,
                                             spec.maxUops);
    isa::Emulator emu(built.program, built.mem);
    emu.run(spec.maxUops + 10);
    EXPECT_TRUE(trace.finalState == emu.archState());
}

TEST(WorkloadSuiteTest, PtrChaseVisitsManyNodes)
{
    const WorkloadSpec &spec = workloadByName("ptr_chase");
    BuiltWorkload built = spec.build();
    sim::DynTrace trace = sim::generateTrace(built.program, built.mem,
                                             spec.maxUops);
    std::set<isa::Addr> loads;
    for (const auto &u : trace.uops)
        if (u.instr.isLoad())
            loads.insert(u.addr);
    EXPECT_GT(loads.size(), 10000u); // low spatial reuse by design
}

TEST(WorkloadSuiteTest, HistogramHitsHotCounters)
{
    const WorkloadSpec &spec = workloadByName("histogram");
    BuiltWorkload built = spec.build();
    sim::DynTrace trace = sim::generateTrace(built.program, built.mem,
                                             spec.maxUops);
    // Counter loads concentrate on 256 addresses.
    std::map<isa::Addr, int> counts;
    for (const auto &u : trace.uops)
        if (u.instr.isLoad() && u.addr < 0x100000 + 256 * 8)
            ++counts[u.addr];
    EXPECT_LE(counts.size(), 256u);
    EXPECT_GT(counts.size(), 100u);
}

TEST(WorkloadSuiteTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(workloadByName("nope"), "unknown workload");
}

} // namespace
} // namespace gam::workload
