/**
 * Tests for the campaign subsystem: exhaustive canonical cycle
 * enumeration (campaign/enumerate.hh), the persistent crash-safe
 * decision store (campaign/store.hh) with its decide() backend
 * integration, and the sharded checkpoint/resume driver
 * (campaign/driver.hh).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

#include "campaign/driver.hh"
#include "campaign/enumerate.hh"
#include "campaign/store.hh"
#include "harness/decision.hh"
#include "litmus/generator.hh"
#include "litmus/suite.hh"

namespace gam::campaign
{
namespace
{

namespace fs = std::filesystem;
using litmus::CycleEdge;
using model::Engine;
using model::ModelKind;

using Kind = CycleEdge::Kind;

CycleEdge
edge(Kind kind, int loc_step = 1)
{
    CycleEdge e;
    e.kind = kind;
    e.locStep = loc_step;
    return e;
}

/** A scratch file path wiped before (and after) each use. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &name)
        : file(fs::temp_directory_path() / name)
    {
        fs::remove(file);
    }
    ~ScratchFile() { fs::remove(file); }

    std::string str() const { return file.string(); }

  private:
    fs::path file;
};

// --------------------------------------------------- canonicalization

TEST(CampaignEnumerate, RotatedCyclesCanonicalizeIdentically)
{
    // Store-buffering: po, fre, po, fre.  Rotating the spec by two
    // edges names the same cycle starting from the other thread.
    const std::vector<CycleEdge> sb = {
        edge(Kind::Po), edge(Kind::Fre), edge(Kind::Po), edge(Kind::Fre)};
    const std::vector<CycleEdge> rotated = {
        edge(Kind::Fre), edge(Kind::Po), edge(Kind::Fre), edge(Kind::Po)};

    auto a = canonicalCycle(sb, 2);
    auto b = canonicalCycle(rotated, 2);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->key, b->key);
    EXPECT_EQ(a->name, b->name);
    ASSERT_EQ(a->edges.size(), b->edges.size());
    for (size_t i = 0; i < a->edges.size(); ++i)
        EXPECT_EQ(a->edges[i].kind, b->edges[i].kind) << "edge " << i;

    // The canonical spec must lower, and both rotations of the input
    // lower to the *same program* (equal litmus fingerprints).
    auto ta = litmus::testFromCycle(a->name, a->edges, a->numLocations);
    ASSERT_TRUE(ta.has_value());
    auto raw_a = litmus::testFromCycle("raw_a", sb, 2);
    auto raw_b = litmus::testFromCycle("raw_b", rotated, 2);
    ASSERT_TRUE(raw_a.has_value());
    ASSERT_TRUE(raw_b.has_value());
    EXPECT_EQ(litmus::fingerprint(*raw_a), litmus::fingerprint(*raw_b));
}

TEST(CampaignEnumerate, ThreadRotationOfIriwCanonicalizes)
{
    // IRIW: rfe, po, fre, rfe, po, fre over two locations.  Rotating
    // by two edges starts the walk mid-thread at the other location --
    // an address relabelling (x <-> y) composed with a thread
    // rotation, and a spec testFromCycle would itself re-rotate.
    const std::vector<CycleEdge> iriw = {
        edge(Kind::Rfe), edge(Kind::Po),  edge(Kind::Fre),
        edge(Kind::Rfe), edge(Kind::Po),  edge(Kind::Fre)};
    std::vector<CycleEdge> rotated(iriw.begin() + 2, iriw.end());
    rotated.insert(rotated.end(), iriw.begin(), iriw.begin() + 2);

    auto a = canonicalCycle(iriw, 2);
    auto b = canonicalCycle(rotated, 2);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->key, b->key);
    EXPECT_EQ(a->name, b->name);
}

TEST(CampaignEnumerate, DistinctCyclesKeepDistinctKeys)
{
    const std::vector<CycleEdge> sb = {
        edge(Kind::Po), edge(Kind::Fre), edge(Kind::Po), edge(Kind::Fre)};
    const std::vector<CycleEdge> mp = {
        edge(Kind::Po), edge(Kind::Rfe), edge(Kind::Po), edge(Kind::Fre)};
    auto a = canonicalCycle(sb, 2);
    auto b = canonicalCycle(mp, 2);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(a->key, b->key);
    EXPECT_NE(a->name, b->name);
}

TEST(CampaignEnumerate, RejectsSpecsTheLoweringWouldReject)
{
    // No communication edge at all.
    EXPECT_FALSE(
        canonicalCycle({edge(Kind::Po), edge(Kind::Po), edge(Kind::Po)}, 2)
            .has_value());
    // An open location walk: one po edge stepping an odd distance
    // around two locations cannot close the cycle.
    EXPECT_FALSE(
        canonicalCycle(
            {edge(Kind::Rfe), edge(Kind::Po, 1), edge(Kind::Fre)}, 2)
            .has_value());
}

// ------------------------------------------------- exhaustive counts

TEST(CampaignEnumerate, PinsSmallUniverseCounts)
{
    // The exhaustive universe is a pure function of the enumeration
    // options; pin the small prefixes so any vocabulary or
    // canonicalization change is a conscious decision.
    EnumerateOptions len3;
    len3.minLen = 3;
    len3.maxLen = 3;
    uint64_t count = 0;
    auto stats =
        enumerateCycles(len3, [&](const CanonicalCycle &) {
            ++count;
            return true;
        });
    EXPECT_EQ(stats.emitted, 56u);
    EXPECT_EQ(stats.emitted, count);
    EXPECT_EQ(stats.unrealisable, 0u);

    EnumerateOptions len4 = len3;
    len4.maxLen = 4;
    stats = enumerateCycles(len4, [](const CanonicalCycle &) {
        return true;
    });
    EXPECT_EQ(stats.emitted, 905u);

    // Without fences and dependencies the universe collapses to the
    // po/comm core.
    EnumerateOptions bare = len4;
    bare.fences = false;
    bare.deps = false;
    stats = enumerateCycles(bare, [](const CanonicalCycle &) {
        return true;
    });
    EXPECT_LT(stats.emitted, 905u);
    EXPECT_GT(stats.emitted, 0u);
}

TEST(CampaignEnumerate, EmissionIsDeterministicAndSorted)
{
    EnumerateOptions opt;
    opt.maxLen = 4;

    std::vector<uint64_t> first, second;
    std::vector<size_t> lengths;
    enumerateCycles(opt, [&](const CanonicalCycle &c) {
        first.push_back(c.key);
        lengths.push_back(c.edges.size());
        return true;
    });
    enumerateCycles(opt, [&](const CanonicalCycle &c) {
        second.push_back(c.key);
        return true;
    });

    // Byte-for-byte identical order across runs (shard assignment
    // depends on it), keys unique, lengths non-decreasing.
    EXPECT_EQ(first, second);
    std::sort(second.begin(), second.end());
    EXPECT_EQ(std::unique(second.begin(), second.end()), second.end());
    EXPECT_TRUE(std::is_sorted(lengths.begin(), lengths.end()));
}

TEST(CampaignEnumerate, EveryEmittedCycleLowers)
{
    EnumerateOptions opt;
    opt.maxLen = 4;
    uint64_t checked = 0;
    enumerateCycles(opt, [&](const CanonicalCycle &c) {
        auto test =
            litmus::testFromCycle(c.name, c.edges, c.numLocations);
        EXPECT_TRUE(test.has_value()) << c.name;
        ++checked;
        return true;
    });
    EXPECT_EQ(checked, 905u);
}

TEST(CampaignEnumerate, EarlyStopReturnsPrefix)
{
    EnumerateOptions opt;
    opt.maxLen = 4;
    uint64_t seen = 0;
    auto stats = enumerateCycles(opt, [&](const CanonicalCycle &) {
        return ++seen < 10;
    });
    EXPECT_EQ(seen, 10u);
    EXPECT_EQ(stats.emitted, 10u);
}

TEST(CampaignEnumerate, OptionsFingerprintSeparatesConfigs)
{
    EnumerateOptions a;
    EnumerateOptions b;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.maxLen = 5;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    b = a;
    b.fences = false;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------- the store

harness::Query
queryFor(const litmus::LitmusTest &test, ModelKind model)
{
    harness::Query q;
    q.test = &test;
    q.model = model;
    q.engine = harness::EngineSelect::Axiomatic;
    return q;
}

TEST(CampaignStore, RoundTripsDecisionsAcrossReopen)
{
    ScratchFile file("gam_campaign_store_roundtrip.bin");
    const auto &tests = litmus::allTests();
    ASSERT_GE(tests.size(), 4u);

    std::vector<uint64_t> keys;
    std::vector<harness::Decision> fresh;
    size_t persisted = 0;
    {
        DecisionStore store(file.str());
        harness::DecisionCache cache(1 << 10);
        for (size_t i = 0; i < 4; ++i) {
            auto q = queryFor(tests[i], ModelKind::GAM);
            keys.push_back(harness::queryKey(q, Engine::Axiomatic));
            fresh.push_back(harness::decide(q, &cache, &store));
            EXPECT_FALSE(fresh.back().storeHit);
        }
        // At least the four outer keys land; SC-delegated queries
        // also persist their inner SC decision under its own key.
        EXPECT_GE(store.stats().appended, 4u);
        persisted = store.size();
    }

    DecisionStore reopened(file.str());
    EXPECT_EQ(reopened.size(), persisted);
    EXPECT_EQ(reopened.stats().loaded, persisted);
    EXPECT_EQ(reopened.stats().droppedBytes, 0u);

    for (size_t i = 0; i < keys.size(); ++i) {
        auto loaded = reopened.load(keys[i]);
        ASSERT_TRUE(loaded.has_value());
        EXPECT_TRUE(loaded->storeHit);
        EXPECT_TRUE(loaded->complete);
        EXPECT_EQ(loaded->allowed, fresh[i].allowed);
        EXPECT_EQ(loaded->engine, fresh[i].engine);
        EXPECT_TRUE(loaded->outcomes.empty()); // verdict-only

        auto rec = reopened.record(keys[i]);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->allowed, fresh[i].allowed);
        EXPECT_EQ(rec->outcomeHash,
                  litmus::outcomeSetHash(fresh[i].outcomes));
        EXPECT_EQ(rec->outcomeCount, fresh[i].outcomes.size());
        EXPECT_EQ(rec->model, ModelKind::GAM);
        EXPECT_EQ(rec->testFingerprint, litmus::fingerprint(tests[i]));
    }
}

TEST(CampaignStore, TruncatesTornTailOnOpen)
{
    ScratchFile file("gam_campaign_store_torn.bin");
    const auto tests = litmus::allTests();
    uint64_t key = 0;
    size_t persisted = 0;
    {
        DecisionStore store(file.str());
        auto q = queryFor(tests[0], ModelKind::GAM);
        key = harness::queryKey(q, Engine::Axiomatic);
        harness::decide(q, nullptr, &store);
        persisted = store.size();
    }
    const auto intact = fs::file_size(file.str());

    // A torn tail: half a record of garbage appended by a dying
    // writer.
    {
        std::ofstream out(file.str(),
                          std::ios::binary | std::ios::app);
        out << "torn-tail-garbage";
    }
    ASSERT_GT(fs::file_size(file.str()), intact);

    DecisionStore recovered(file.str());
    EXPECT_EQ(recovered.stats().loaded, persisted);
    EXPECT_GT(recovered.stats().droppedBytes, 0u);
    EXPECT_EQ(fs::file_size(file.str()), intact); // truncated back
    EXPECT_TRUE(recovered.load(key).has_value());
}

TEST(CampaignStore, DropsChecksumCorruptTail)
{
    ScratchFile file("gam_campaign_store_corrupt.bin");
    const auto tests = litmus::allTests();
    size_t persisted = 0;
    {
        DecisionStore store(file.str());
        for (size_t i = 0; i < 3; ++i)
            harness::decide(queryFor(tests[i], ModelKind::GAM),
                            nullptr, &store);
        persisted = store.size();
        EXPECT_GE(persisted, 3u);
    }

    // Flip bytes inside the final record; its checksum must fail and
    // only that record be dropped.
    {
        std::fstream f(file.str(),
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(-8, std::ios::end);
        const char junk[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
        f.write(junk, sizeof(junk));
    }

    DecisionStore recovered(file.str());
    EXPECT_EQ(recovered.stats().loaded, persisted - 1);
    EXPECT_GT(recovered.stats().droppedBytes, 0u);
}

TEST(CampaignStore, EmptyAndHeaderOnlyFilesOpenCleanly)
{
    ScratchFile file("gam_campaign_store_empty.bin");
    {
        // A zero-byte file (e.g. killed before the header landed).
        std::ofstream out(file.str(), std::ios::binary);
    }
    DecisionStore store(file.str());
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.stats().droppedBytes, 0u);
    EXPECT_FALSE(store.load(42).has_value());
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(CampaignStore, DecideServesStoreHitsWithoutCachingThem)
{
    ScratchFile file("gam_campaign_store_decide.bin");
    const auto tests = litmus::allTests();
    DecisionStore store(file.str());
    harness::DecisionCache cache(1 << 10);
    auto q = queryFor(tests[0], ModelKind::GAM);

    auto first = harness::decide(q, &cache, &store);
    EXPECT_FALSE(first.storeHit);

    // Fresh cache: the store, not the engines, must answer -- and the
    // verdict-only reconstruction must stay out of the cache.
    harness::DecisionCache cold(1 << 10);
    auto second = harness::decide(q, &cold, &store);
    EXPECT_TRUE(second.storeHit);
    EXPECT_FALSE(second.cacheHit);
    EXPECT_EQ(second.allowed, first.allowed);
    EXPECT_EQ(cold.size(), 0u);

    auto third = harness::decide(q, &cold, &store);
    EXPECT_TRUE(third.storeHit); // still the store, still not cached
    EXPECT_EQ(store.stats().duplicates, 0u); // hits never re-persisted
}

TEST(CampaignStore, PersistsValueCoverVerdicts)
{
    // Built-in conditions are satisfiable; force a ValueCover verdict
    // the way the prescreen tests do, by asking for a value no store
    // ever writes.
    ScratchFile file("gam_campaign_store_prescreen.bin");
    DecisionStore store(file.str());
    litmus::LitmusTest bogus = *litmus::findTest("mp");
    ASSERT_FALSE(bogus.regCond.empty());
    bogus.regCond[0].value = 0x7777;

    auto q = queryFor(bogus, ModelKind::GAM);
    auto d = harness::decide(q, nullptr, &store);
    ASSERT_EQ(d.prescreened, harness::PrescreenKind::ValueCover);

    auto rec = store.record(harness::queryKey(q, Engine::Axiomatic));
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->prescreened, harness::PrescreenKind::ValueCover);
    EXPECT_EQ(rec->outcomeCount, 0u);
    EXPECT_FALSE(rec->allowed);
    // A fresh decide reproduces the same shape exactly, so the stored
    // witness round-trips.
    auto fresh = harness::decide(q, nullptr, nullptr);
    EXPECT_EQ(litmus::outcomeSetHash(fresh.outcomes), rec->outcomeHash);

    // And a cold decide() against the store serves it back.
    auto served = harness::decide(q, nullptr, &store);
    EXPECT_TRUE(served.storeHit);
    EXPECT_FALSE(served.allowed);
    EXPECT_EQ(served.prescreened, harness::PrescreenKind::ValueCover);
}

// -------------------------------------------------- cache satellites

TEST(DecisionCacheStats, CountsEvictionsAndExposesCapacity)
{
    // One entry of capacity total: every shard holds at most one, so
    // two inserts routed to the same shard evict.
    harness::DecisionCache tiny(1);
    EXPECT_GT(tiny.capacity(), 0u);

    harness::Decision d;
    d.complete = true;
    tiny.insert(0x0000000000000001ull, d); // shard 0
    tiny.insert(0x0000000000000002ull, d); // shard 0 again
    EXPECT_EQ(tiny.stats().evictions, 1u);
    tiny.insert(0x0000000000000002ull, d); // resident: no eviction
    EXPECT_EQ(tiny.stats().evictions, 1u);
    tiny.clear();
    EXPECT_EQ(tiny.stats().evictions, 0u);
}

// ---------------------------------------------------------- driver

CampaignOptions
smallCampaign()
{
    CampaignOptions opt;
    opt.enumerate.maxLen = 3;
    opt.models = {ModelKind::GAM0, ModelKind::GAM};
    opt.engines = {Engine::Axiomatic};
    opt.shards = 4;
    opt.threads = 2;
    return opt;
}

TEST(CampaignDriver, DecidesTheUniverseAndVerifies)
{
    ScratchFile store_file("gam_campaign_driver_run.bin");
    DecisionStore store(store_file.str());

    CampaignOptions opt = smallCampaign();
    opt.verifySample = 7;
    auto result = runCampaign(opt, &store);

    EXPECT_EQ(result.enumerate.emitted, 56u);
    EXPECT_GT(result.units, 0u);
    EXPECT_EQ(result.units + result.duplicateTests, 56u);
    EXPECT_EQ(result.pairs, 2u);
    EXPECT_EQ(result.skippedPairs, 0u);
    EXPECT_EQ(result.decisions, result.units * 2);
    EXPECT_EQ(result.storeHits, 0u);
    EXPECT_EQ(result.shardsDone, 4u);
    EXPECT_GT(result.verified, 0u);
    EXPECT_EQ(result.verifyMismatches, 0u);
    // Every decision persisted; SC-delegated ones may add one inner
    // SC record per distinct test on top.
    EXPECT_GE(store.size(), result.decisions);
    EXPECT_LE(store.size(), result.decisions + result.units);

    // Second run over the same store: 100% store hits, same verdicts.
    auto again = runCampaign(opt, &store);
    EXPECT_EQ(again.decisions, result.decisions);
    EXPECT_EQ(again.storeHits, again.decisions);
    EXPECT_EQ(again.allowed, result.allowed);
    EXPECT_EQ(again.verifyMismatches, 0u);
    ASSERT_EQ(again.tallies.size(), result.tallies.size());
    for (size_t i = 0; i < again.tallies.size(); ++i)
        EXPECT_EQ(again.tallies[i].allowed, result.tallies[i].allowed);
}

TEST(CampaignDriver, MetricsReconcileExactlyWithDriverTallies)
{
    // With a store attached every decision is served from exactly one
    // source, so the tallies must reconcile to the decision count --
    // and the embedded registry delta must agree with the tallies it
    // mirrors, on both the engine-cold and the store-served pass.
    ScratchFile store_file("gam_campaign_obs_reconcile.bin");
    DecisionStore store(store_file.str());
    CampaignOptions opt = smallCampaign();

    const auto cold = runCampaign(opt, &store);
    EXPECT_GT(cold.storeWrites, 0u);
    EXPECT_EQ(cold.decisions,
              cold.storeWrites + cold.cacheHits + cold.storeHits);

    const obs::MetricSnapshot &m = cold.metrics;
    EXPECT_EQ(m.counter("campaign.units"), cold.units);
    EXPECT_EQ(m.counter("campaign.decisions"), cold.decisions);
    EXPECT_EQ(m.counter("campaign.allowed"), cold.allowed);
    EXPECT_EQ(m.counter("campaign.cache.hit"), cold.cacheHits);
    EXPECT_EQ(m.counter("campaign.store.hit"), cold.storeHits);
    EXPECT_EQ(m.counter("campaign.store.write"), cold.storeWrites);
    EXPECT_EQ(m.counter("campaign.shards.done"), cold.shardsDone);
    // Every shard samples its wall time and decision count once.
    EXPECT_EQ(m.histograms.at("campaign.shard.wall_us").count,
              cold.shardsDone);
    EXPECT_EQ(m.histograms.at("campaign.shard.decisions").sum,
              cold.decisions);
    // The delta is what --metrics writes; it must survive its own
    // JSON exactly.
    const auto parsed = obs::MetricSnapshot::fromJson(m.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == m);

    // Second pass: everything is a store hit and the equation holds
    // with zero writes.
    const auto resumed = runCampaign(opt, &store);
    EXPECT_EQ(resumed.storeHits, resumed.decisions);
    EXPECT_EQ(resumed.storeWrites, 0u);
    EXPECT_EQ(resumed.decisions,
              resumed.storeWrites + resumed.cacheHits
                  + resumed.storeHits);
    EXPECT_EQ(resumed.metrics.counter("campaign.store.hit"),
              resumed.storeHits);
    EXPECT_EQ(resumed.metrics.counter("campaign.store.write"), 0u);
}

TEST(CampaignDriver, SkipsUnsupportedPairs)
{
    CampaignOptions opt = smallCampaign();
    opt.models = {ModelKind::ARM, ModelKind::AlphaStar};
    opt.engines = {Engine::Cat}; // neither ships a cat file
    auto result = runCampaign(opt, nullptr);
    EXPECT_EQ(result.pairs, 0u);
    EXPECT_EQ(result.skippedPairs, 2u);
    EXPECT_EQ(result.decisions, 0u);
}

TEST(CampaignDriver, LimitTakesAPrefixOfTheUniverse)
{
    CampaignOptions opt = smallCampaign();
    opt.limit = 10;
    auto result = runCampaign(opt, nullptr);
    EXPECT_EQ(result.units, 10u);
    EXPECT_EQ(result.decisions, 20u);
}

TEST(CampaignDriver, ResumeSkipsCheckpointedShards)
{
    ScratchFile store_file("gam_campaign_driver_resume.bin");
    ScratchFile ckpt_file("gam_campaign_driver_resume.ckpt");

    CampaignOptions opt = smallCampaign();
    opt.checkpointPath = ckpt_file.str();

    DecisionStore store(store_file.str());
    auto full = runCampaign(opt, &store);
    EXPECT_EQ(full.shardsResumed, 0u);

    // Everything checkpointed: a resume does no deciding at all.
    opt.resume = true;
    auto resumed = runCampaign(opt, &store);
    EXPECT_EQ(resumed.shardsResumed, 4u);
    EXPECT_EQ(resumed.decisions, 0u);

    // Hand-truncate the checkpoint to shards {0, 2}: a resume decides
    // exactly the other two shards' units, all served by the store.
    std::vector<std::string> lines;
    {
        std::ifstream in(ckpt_file.str());
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 2u);
    {
        std::ofstream out(ckpt_file.str(), std::ios::trunc);
        out << lines[0] << "\n" << lines[1] << "\n";
        out << "done 0\ndone 2\n";
        out << "done torn-gar"; // a torn final line must be ignored
    }
    auto partial = runCampaign(opt, &store);
    EXPECT_EQ(partial.shardsResumed, 2u);
    EXPECT_GT(partial.decisions, 0u);
    EXPECT_LT(partial.decisions, full.decisions);
    EXPECT_EQ(partial.storeHits, partial.decisions);
}

TEST(CampaignDriver, CheckpointRejectsOtherConfigs)
{
    ScratchFile ckpt_file("gam_campaign_driver_confighash.ckpt");
    CampaignOptions opt = smallCampaign();
    opt.checkpointPath = ckpt_file.str();
    runCampaign(opt, nullptr);

    opt.resume = true;
    opt.enumerate.maxLen = 4; // a different universe
    EXPECT_DEATH(runCampaign(opt, nullptr), "different campaign");
}

TEST(CampaignDriver, FormatsSummaries)
{
    ScratchFile store_file("gam_campaign_driver_format.bin");
    DecisionStore store(store_file.str());
    CampaignOptions opt = smallCampaign();
    auto result = runCampaign(opt, &store);

    const std::string text = formatCampaign(result);
    EXPECT_NE(text.find("canonical cycles"), std::string::npos);
    EXPECT_NE(text.find("GAM/axiomatic"), std::string::npos);

    const std::string summary = formatStoreSummary(store);
    EXPECT_NE(summary.find("distinct tests"), std::string::npos);
    const std::string filtered = formatStoreSummary(
        store, ModelKind::GAM, true);
    EXPECT_NE(filtered.find("matching"), std::string::npos);
}

// --------------------------------------- batched pipeline & buffering

TEST(CampaignDriver, LegacyPipelineMatchesTheBatchedOne)
{
    // batching=false is the PR 8 static-shard decide() pipeline, kept
    // for A/B benchmarking; both pipelines must produce identical
    // results and identical stores.
    ScratchFile batched_file("gam_campaign_pipeline_batched.bin");
    ScratchFile legacy_file("gam_campaign_pipeline_legacy.bin");

    CampaignOptions opt = smallCampaign();
    opt.verifySample = 5;

    DecisionStore batched_store(batched_file.str());
    opt.batching = true;
    const auto batched = runCampaign(opt, &batched_store);

    DecisionStore legacy_store(legacy_file.str());
    opt.batching = false;
    const auto legacy = runCampaign(opt, &legacy_store);

    EXPECT_EQ(batched.units, legacy.units);
    EXPECT_EQ(batched.decisions, legacy.decisions);
    EXPECT_EQ(batched.allowed, legacy.allowed);
    EXPECT_EQ(batched.storeWrites, legacy.storeWrites);
    EXPECT_EQ(batched.shardsDone, legacy.shardsDone);
    EXPECT_EQ(batched.verifyMismatches, 0u);
    EXPECT_EQ(legacy.verifyMismatches, 0u);
    ASSERT_EQ(batched.tallies.size(), legacy.tallies.size());
    for (size_t i = 0; i < batched.tallies.size(); ++i) {
        EXPECT_EQ(batched.tallies[i].decided, legacy.tallies[i].decided);
        EXPECT_EQ(batched.tallies[i].allowed, legacy.tallies[i].allowed);
    }
    // Record-for-record identical persistence: same keys, same
    // verdicts, same outcome witnesses.
    EXPECT_EQ(batched_store.size(), legacy_store.size());
    batched_store.forEach([&](const StoreRecord &r) {
        const auto other = legacy_store.record(r.key);
        ASSERT_TRUE(other.has_value()) << r.key;
        EXPECT_EQ(other->allowed, r.allowed) << r.key;
        EXPECT_EQ(other->outcomeHash, r.outcomeHash) << r.key;
        EXPECT_EQ(other->outcomeCount, r.outcomeCount) << r.key;
    });
}

TEST(CampaignDriver, MidShardStoreCoverageKeepsTheReconciliation)
{
    // A store covering a *prefix* of every shard's units (a previous
    // run killed mid-campaign): the next run mixes store hits and
    // fresh decisions within one shard, and the tallies must still
    // reconcile exactly.
    ScratchFile store_file("gam_campaign_midshard.bin");
    DecisionStore store(store_file.str());

    CampaignOptions opt = smallCampaign();
    CampaignOptions prefix = opt;
    prefix.limit = 10;
    runCampaign(prefix, &store);

    const auto full = runCampaign(opt, &store);
    EXPECT_GT(full.storeHits, 0u);
    EXPECT_LT(full.storeHits, full.decisions);
    EXPECT_GT(full.storeWrites, 0u);
    EXPECT_EQ(full.decisions,
              full.storeWrites + full.cacheHits + full.storeHits);
    EXPECT_EQ(full.metrics.counter("campaign.decisions"),
              full.decisions);
    EXPECT_EQ(full.metrics.counter("campaign.store.hit"),
              full.storeHits);
    EXPECT_EQ(full.metrics.counter("campaign.store.write"),
              full.storeWrites);
    EXPECT_EQ(full.metrics.histograms.at("campaign.shard.decisions").sum,
              full.decisions);
}

TEST(CampaignDriver, CheckpointedShardsSurviveAnAbruptExit)
{
    // The driver must flush the store *before* the checkpoint marks a
    // shard done: a child process decides the campaign with a store
    // that only flushes at explicit durability points, then dies via
    // _exit -- no destructors, stdio buffers dropped.  Everything the
    // checkpoint claims done must nonetheless be on disk.
    ScratchFile store_file("gam_campaign_kill.bin");
    ScratchFile ckpt_file("gam_campaign_kill.ckpt");

    CampaignOptions opt = smallCampaign();
    opt.checkpointPath = ckpt_file.str();

    const auto reference = runCampaign(opt, nullptr);
    ASSERT_GT(reference.decisions, 0u);
    fs::remove(ckpt_file.str());

    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        StoreOptions lazy;
        lazy.flushEveryRecords = 1u << 30;
        lazy.flushIntervalMs = 0;
        DecisionStore child_store(store_file.str(), lazy);
        runCampaign(opt, &child_store);
        _exit(0);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    DecisionStore store(store_file.str());
    EXPECT_EQ(store.stats().droppedBytes, 0u);
    EXPECT_GE(store.size(), reference.decisions);

    opt.resume = true;
    opt.verifySample = 5;
    const auto resumed = runCampaign(opt, &store);
    EXPECT_EQ(resumed.shardsResumed, opt.shards);
    EXPECT_EQ(resumed.decisions, 0u);
    EXPECT_EQ(resumed.verifyMismatches, 0u);
    EXPECT_EQ(resumed.decisions,
              resumed.storeWrites + resumed.cacheHits
                  + resumed.storeHits);
}

TEST(CampaignStore, BufferedAppendsAreReadableBeforeTheyAreDurable)
{
    ScratchFile store_file("gam_campaign_buffered.bin");
    StoreOptions lazy;
    lazy.flushEveryRecords = 1u << 30;
    lazy.flushIntervalMs = 0;

    harness::Query q;
    q.test = &litmus::testByName("mp");
    q.model = ModelKind::GAM;
    harness::Decision d;
    d.allowed = true;
    d.complete = true;

    DecisionStore store(store_file.str(), lazy);
    store.store(42, q, d);
    // Read-your-writes from the in-memory index, while the record
    // still sits in the stdio buffer (only the header is on disk).
    const auto loaded = store.load(42);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->allowed);
    EXPECT_EQ(fs::file_size(store_file.str()), 16u);
    store.flush();
    EXPECT_EQ(fs::file_size(store_file.str()), 16u + 40u);
}

// ---------------------------------------------- compaction & queries

/** A store record crafted by hand (key chosen by the test). */
void
craftRecord(DecisionStore &store, uint64_t key, bool allowed)
{
    harness::Query q;
    q.test = &litmus::testByName("mp");
    q.model = ModelKind::GAM;
    harness::Decision d;
    d.allowed = allowed;
    d.complete = true;
    store.store(key, q, d);
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(CampaignStore, CompactMergesFirstInputWinsDeterministically)
{
    ScratchFile a_file("gam_campaign_compact_a.bin");
    ScratchFile b_file("gam_campaign_compact_b.bin");
    ScratchFile out1_file("gam_campaign_compact_out1.bin");
    ScratchFile out2_file("gam_campaign_compact_out2.bin");

    {
        DecisionStore a(a_file.str());
        craftRecord(a, 7, true);
        craftRecord(a, 42, true);
        DecisionStore b(b_file.str());
        craftRecord(b, 42, false); // conflicting verdict: a's wins
        craftRecord(b, 9, false);
    }

    const CompactStats stats = compactStores(
        {a_file.str(), b_file.str()}, out1_file.str());
    EXPECT_EQ(stats.inputs, 2u);
    EXPECT_EQ(stats.scanned, 4u);
    EXPECT_EQ(stats.merged, 3u);
    EXPECT_EQ(stats.duplicates, 1u);

    DecisionStore merged(out1_file.str());
    EXPECT_EQ(merged.size(), 3u);
    EXPECT_TRUE(merged.record(42)->allowed);  // first input won
    EXPECT_TRUE(merged.record(7)->allowed);
    EXPECT_FALSE(merged.record(9)->allowed);

    // Same inputs, byte-identical output.
    compactStores({a_file.str(), b_file.str()}, out2_file.str());
    EXPECT_EQ(fileBytes(out1_file.str()), fileBytes(out2_file.str()));

    // Swapped input order: b's verdict for the contested key wins.
    compactStores({b_file.str(), a_file.str()}, out2_file.str());
    DecisionStore swapped(out2_file.str());
    EXPECT_FALSE(swapped.record(42)->allowed);
}

TEST(CampaignStore, TestIndexServesRecordsInKeyOrder)
{
    ScratchFile store_file("gam_campaign_testindex.bin");
    DecisionStore store(store_file.str());
    craftRecord(store, 30, true);
    craftRecord(store, 10, false);
    craftRecord(store, 20, true);

    const uint64_t fp = litmus::fingerprint(litmus::testByName("mp"));
    EXPECT_EQ(store.distinctTests(), 1u);
    const auto records = store.recordsForTest(fp);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].key, 10u);
    EXPECT_EQ(records[1].key, 20u);
    EXPECT_EQ(records[2].key, 30u);
    EXPECT_TRUE(store.recordsForTest(fp + 1).empty());
}

TEST(CampaignDriver, DisagreePinsGamAgainstGam0)
{
    // Where GAM and GAM0 part ways on the symmetry-reduced length-<=4
    // universe: exactly 11 tests, every one allowed by GAM0 (no
    // load-load ordering without a dependency) and forbidden by GAM.
    ScratchFile store_file("gam_campaign_disagree.bin");
    DecisionStore store(store_file.str());

    CampaignOptions opt = smallCampaign();
    opt.enumerate.maxLen = 4;
    opt.enumerate.canonical = CanonicalForm::Full;
    runCampaign(opt, &store);

    const auto disagreements =
        disagreeingTests(store, ModelKind::GAM, ModelKind::GAM0);
    EXPECT_EQ(disagreements.size(), 11u);
    for (size_t i = 0; i < disagreements.size(); ++i) {
        EXPECT_FALSE(disagreements[i].aAllowed) << i;
        EXPECT_TRUE(disagreements[i].bAllowed) << i;
        if (i > 0) {
            EXPECT_LT(disagreements[i - 1].testFingerprint,
                      disagreements[i].testFingerprint);
        }
    }

    // Swapping the arguments mirrors the sides.
    const auto mirrored =
        disagreeingTests(store, ModelKind::GAM0, ModelKind::GAM);
    ASSERT_EQ(mirrored.size(), disagreements.size());
    for (size_t i = 0; i < mirrored.size(); ++i) {
        EXPECT_EQ(mirrored[i].testFingerprint,
                  disagreements[i].testFingerprint);
        EXPECT_TRUE(mirrored[i].aAllowed);
        EXPECT_FALSE(mirrored[i].bAllowed);
    }

    // A model with no records never disagrees.
    EXPECT_TRUE(disagreeingTests(store, ModelKind::GAM, ModelKind::ARM)
                    .empty());

    const std::string text =
        formatDisagreements(store, ModelKind::GAM, ModelKind::GAM0);
    EXPECT_NE(text.find("GAM vs GAM0: 11 disagreeing tests"),
              std::string::npos);
    EXPECT_NE(text.find("GAM forbids"), std::string::npos);
}

} // namespace
} // namespace gam::campaign
