/**
 * The differential fuzzer: cross-checking, budget handling, report
 * rendering, and a smoke campaign over the generated stream.
 */

#include <gtest/gtest.h>

#include "harness/decision.hh"
#include "harness/fuzz.hh"
#include "litmus/generator.hh"
#include "litmus/suite.hh"

namespace gam
{
namespace
{

using model::ModelKind;

TEST(Fuzz, CrossCheckAgreesOnSuiteTests)
{
    for (const char *name : {"dekker", "mp_fenced", "iriw", "corr"}) {
        const litmus::LitmusTest &test = *litmus::findTest(name);
        for (ModelKind model : {ModelKind::SC, ModelKind::TSO,
                                ModelKind::GAM0, ModelKind::GAM,
                                ModelKind::ARM}) {
            auto diff = harness::crossCheck(test, model, 20'000'000);
            EXPECT_EQ(diff, std::nullopt)
                << name << " under " << model::modelName(model) << "\n"
                << diff.value_or("");
        }
    }
}

TEST(Fuzz, ExhaustedBudgetIsSkippedNotDiverged)
{
    const litmus::LitmusTest &test = *litmus::findTest("dekker");
    // Earlier tests may have cached a complete decision for this test
    // (cache keys ignore the budget, so a tiny-budget query would be
    // served the exhaustive answer); force the truncation path.
    harness::globalDecisionCache().clear();
    bool budget = false;
    auto diff = harness::crossCheck(test, ModelKind::GAM, 1, &budget);
    EXPECT_TRUE(budget);
    EXPECT_EQ(diff, std::nullopt);
}

TEST(Fuzz, SmokeCampaignFindsNoDivergence)
{
    harness::FuzzOptions options;
    options.tests = 50;
    options.seed = 7;
    harness::FuzzReport report = harness::fuzzDifferential(options);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_EQ(report.testsRun, 50u);
    EXPECT_EQ(report.checksRun, 250u); // 5 models per test
    EXPECT_NE(report.toString().find("0 divergences"),
              std::string::npos);
}

TEST(Fuzz, ReportIsDeterministic)
{
    harness::FuzzOptions options;
    options.tests = 20;
    options.seed = 9;
    const std::string a = harness::fuzzDifferential(options).toString();
    const std::string b = harness::fuzzDifferential(options).toString();
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace gam
