/**
 * The diy-style test generator: determinism, validity and diversity of
 * the generated stream, and its interaction with the text format and
 * the verdict matrix.
 */

#include <gtest/gtest.h>

#include <set>

#include "harness/litmus_runner.hh"
#include "litmus/generator.hh"
#include "litmus/parser.hh"

namespace gam
{
namespace
{

using litmus::generateTest;
using litmus::LitmusTest;

TEST(Generator, DeterministicUnderAFixedSeed)
{
    for (uint64_t i = 0; i < 50; ++i) {
        const LitmusTest a = generateTest(42, i);
        const LitmusTest b = generateTest(42, i);
        EXPECT_EQ(litmus::printLitmus(a), litmus::printLitmus(b)) << i;
    }
}

TEST(Generator, StreamsWithDifferentSeedsDiffer)
{
    size_t different = 0;
    for (uint64_t i = 0; i < 20; ++i) {
        if (litmus::printLitmus(generateTest(1, i))
            != litmus::printLitmus(generateTest(2, i))) {
            ++different;
        }
    }
    EXPECT_GT(different, 10u);
}

TEST(Generator, EveryTestIsRunnableAndBounded)
{
    std::set<std::string> shapes;
    for (uint64_t i = 0; i < 200; ++i) {
        const LitmusTest t = generateTest(3, i);
        EXPECT_EQ(t.check(), std::nullopt)
            << t.name << ": " << t.check().value_or("");
        EXPECT_GE(t.threads.size(), 2u) << t.name;
        EXPECT_LE(t.threads.size(), 4u) << t.name;
        EXPECT_LE(t.locations.size(), 4u) << t.name;
        int loads = 0, stores = 0;
        for (const auto &prog : t.threads) {
            for (const auto &instr : prog.code) {
                loads += instr.isLoad();
                stores += instr.isStore();
            }
        }
        EXPECT_LE(loads, 4) << t.name;
        EXPECT_LE(stores, 4) << t.name;
        EXPECT_FALSE(t.regCond.empty() && t.memCond.empty()) << t.name;
        // Shape fingerprint: threads are stripped to opcode sequences.
        std::string shape;
        for (const auto &prog : t.threads) {
            for (const auto &instr : prog.code)
                shape += isa::opcodeName(instr.op) + ";";
            shape += "|";
        }
        shapes.insert(shape);
    }
    // The stream explores genuinely different program shapes.
    EXPECT_GT(shapes.size(), 40u);
}

TEST(Generator, GeneratedTestsRoundTripThroughTheTextFormat)
{
    for (uint64_t i = 0; i < 50; ++i) {
        const LitmusTest t = generateTest(11, i);
        const std::string text = litmus::printLitmus(t);
        auto parsed = litmus::parseLitmus(text);
        ASSERT_TRUE(parsed) << t.name << ": "
                            << parsed.error.toString();
        EXPECT_EQ(text, litmus::printLitmus(*parsed)) << t.name;
    }
}

TEST(Generator, AnnotatedVerdictsMatchTheOperationalEngine)
{
    // annotateExpected() stamps axiomatic verdicts; the operational
    // engine must agree wherever the equivalence theorem promises
    // equality (everything but ARM, where the machine is conservative).
    const std::vector<model::ModelKind> equal_models = {
        model::ModelKind::SC, model::ModelKind::TSO,
        model::ModelKind::GAM0, model::ModelKind::GAM,
    };
    std::vector<LitmusTest> tests;
    for (uint64_t i = 0; i < 10; ++i) {
        tests.push_back(generateTest(5, i));
        harness::annotateExpected(tests.back(), equal_models);
    }
    const auto verdicts =
        harness::runLitmusMatrixParallel(tests, equal_models, 0);
    for (const auto &v : verdicts) {
        EXPECT_TRUE(v.matchesPaper())
            << v.test << " under " << model::modelName(v.model);
    }
}

} // namespace
} // namespace gam
