/**
 * Tests for the batched decision pipeline (harness::decideBatch):
 * query-for-query equivalence with decide() across every builtin test,
 * model and enumeration engine, identical cache and backend
 * interactions, and the batch amortization counters
 * (decide.batch.plan_reuse / fused_groups / fused_queries).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "harness/decision.hh"
#include "litmus/outcome.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"
#include "obs/registry.hh"

namespace gam::harness
{
namespace
{

using model::Engine;
using model::ModelKind;

constexpr ModelKind enumerableModels[] = {
    ModelKind::SC,   ModelKind::TSO, ModelKind::GAM0,
    ModelKind::GAM,  ModelKind::ARM, ModelKind::PerLocSC,
};

Query
queryFor(const litmus::LitmusTest &test, ModelKind model,
         EngineSelect engine)
{
    Query q;
    q.test = &test;
    q.model = model;
    q.engine = engine;
    return q;
}

/** Every (builtin test, model, engine) query the batch pipeline can
 *  decide, in an order that interleaves models and engines -- the
 *  grouping inside decideBatch must not leak into the results.
 *  @p tests must outlive the queries (they point into it). */
std::vector<Query>
allEnumerationQueries(const std::vector<litmus::LitmusTest> &tests)
{
    std::vector<Query> queries;
    for (const auto &test : tests) {
        for (ModelKind model : enumerableModels) {
            queries.push_back(
                queryFor(test, model, EngineSelect::Axiomatic));
            if (model::supportsEngine(model, Engine::Cat))
                queries.push_back(
                    queryFor(test, model, EngineSelect::Cat));
        }
    }
    return queries;
}

void
expectSameDecision(const Decision &batch, const Decision &one,
                   const Query &query, size_t index)
{
    const std::string what = std::string(query.test->name) + " under "
        + model::modelName(query.model) + " #" + std::to_string(index);
    EXPECT_EQ(batch.allowed, one.allowed) << what;
    EXPECT_EQ(batch.engine, one.engine) << what;
    EXPECT_EQ(batch.complete, one.complete) << what;
    EXPECT_EQ(batch.prescreened, one.prescreened) << what;
    EXPECT_EQ(batch.outcomes.size(), one.outcomes.size()) << what;
    EXPECT_EQ(litmus::outcomeSetHash(batch.outcomes),
              litmus::outcomeSetHash(one.outcomes))
        << what;
    EXPECT_EQ(batch.catCompiled, one.catCompiled) << what;
}

TEST(DecideBatch, MatchesDecideQueryForQueryOnAllBuiltins)
{
    const std::vector<litmus::LitmusTest> tests = litmus::allTests();
    const std::vector<Query> queries = allEnumerationQueries(tests);
    ASSERT_FALSE(queries.empty());

    DecisionCache batchCache(1 << 16);
    const std::vector<Decision> batched =
        decideBatch(queries, &batchCache);
    ASSERT_EQ(batched.size(), queries.size());

    DecisionCache oneCache(1 << 16);
    for (size_t i = 0; i < queries.size(); ++i) {
        const Decision one = decide(queries[i], &oneCache);
        expectSameDecision(batched[i], one, queries[i], i);
    }
}

TEST(DecideBatch, SecondBatchServesFromTheSharedCache)
{
    const auto &mp = litmus::testByName("mp");
    const auto &sb = litmus::testByName("dekker");
    std::vector<Query> queries = {
        queryFor(mp, ModelKind::GAM, EngineSelect::Axiomatic),
        queryFor(sb, ModelKind::TSO, EngineSelect::Axiomatic),
        queryFor(mp, ModelKind::SC, EngineSelect::Cat),
    };

    DecisionCache cache(1 << 12);
    const auto cold = decideBatch(queries, &cache);
    const auto warm = decideBatch(queries, &cache);
    ASSERT_EQ(cold.size(), warm.size());
    for (size_t i = 0; i < cold.size(); ++i) {
        EXPECT_FALSE(cold[i].cacheHit) << i;
        EXPECT_TRUE(warm[i].cacheHit) << i;
        expectSameDecision(warm[i], cold[i], queries[i], i);
    }
}

/** A trivial in-memory DecisionBackend: what the campaign store does,
 *  without the file. */
class MapBackend final : public DecisionBackend
{
  public:
    std::optional<Decision> load(uint64_t key) override
    {
        auto it = records.find(key);
        if (it == records.end())
            return std::nullopt;
        Decision d;
        d.allowed = it->second;
        d.complete = true;
        d.storeHit = true;
        return d;
    }

    void store(uint64_t key, const Query &,
               const Decision &decision) override
    {
        records.emplace(key, decision.allowed);
    }

    std::map<uint64_t, bool> records;
};

TEST(DecideBatch, BackendInteractionsMatchDecide)
{
    std::vector<Query> queries;
    for (const char *name : {"mp", "dekker", "lb", "iriw"})
        for (ModelKind model : {ModelKind::TSO, ModelKind::GAM})
            queries.push_back(queryFor(litmus::testByName(name), model,
                                       EngineSelect::Axiomatic));

    // Cold batch offers every fresh decision to the backend...
    MapBackend viaBatch;
    {
        DecisionCache cache(1 << 12);
        const auto cold = decideBatch(queries, &cache, &viaBatch);
        // Every query persisted, plus one inner SC record per
        // SC-delegated query -- exactly what a decide() loop offers.
        EXPECT_GE(viaBatch.records.size(), queries.size());
        for (const Decision &d : cold)
            EXPECT_FALSE(d.storeHit);
    }
    // ...exactly as a decide() loop would (same keys, same verdicts)...
    MapBackend viaLoop;
    {
        DecisionCache cache(1 << 12);
        for (const Query &q : queries)
            decide(q, &cache, &viaLoop);
    }
    EXPECT_EQ(viaBatch.records, viaLoop.records);

    // ...and a cold-cache re-batch serves verdict-only store hits.
    DecisionCache fresh(1 << 12);
    const auto warm = decideBatch(queries, &fresh, &viaBatch);
    for (size_t i = 0; i < warm.size(); ++i) {
        EXPECT_TRUE(warm[i].storeHit) << i;
        EXPECT_EQ(warm[i].allowed,
                  viaBatch.records.at(queryKey(
                      queries[i], resolveEngine(queries[i]))))
            << i;
        EXPECT_TRUE(warm[i].outcomes.empty()) << i;
    }
}

TEST(DecideBatch, ReusesPlansAndFusesArenasWithinABatch)
{
    // Two cat models over two tests: each model's plan compiles once
    // and serves its second query.  Two axiomatic models over the same
    // tests: each test's queries fuse into ONE enumeration pass with
    // one filter lane per model, so the arena is built once per test
    // and never *re*-used (fused_queries / fused_groups is the
    // amortization instead).
    const auto &mp = litmus::testByName("mp");
    const auto &sb = litmus::testByName("dekker");
    std::vector<Query> queries = {
        queryFor(mp, ModelKind::GAM, EngineSelect::Cat),
        queryFor(sb, ModelKind::GAM, EngineSelect::Cat),
        queryFor(mp, ModelKind::GAM0, EngineSelect::Cat),
        queryFor(sb, ModelKind::GAM0, EngineSelect::Cat),
        queryFor(mp, ModelKind::GAM, EngineSelect::Axiomatic),
        queryFor(sb, ModelKind::GAM, EngineSelect::Axiomatic),
        queryFor(mp, ModelKind::GAM0, EngineSelect::Axiomatic),
        queryFor(sb, ModelKind::GAM0, EngineSelect::Axiomatic),
    };

    const obs::MetricSnapshot before = obs::metrics().snapshot();
    DecisionCache cache(1 << 12);
    decideBatch(queries, &cache);
    const obs::MetricSnapshot delta =
        obs::metrics().snapshot().delta(before);

    EXPECT_EQ(delta.counter("decide.batch.calls"), 1u);
    EXPECT_EQ(delta.counter("decide.batch.queries"), queries.size());
    // Four (model, engine) groups, whatever order the sort puts them
    // in.
    EXPECT_EQ(delta.counter("decide.batch.groups"), 4u);
    // GAM.cat and GAM0.cat each compile once and reuse once.
    EXPECT_EQ(delta.counter("decide.batch.plan_reuse"), 2u);
    // mp and sb each run ONE fused enumeration deciding both
    // axiomatic models (plus any SC-delegation lane), so the arena is
    // built exactly once per test -- nothing left to reuse.
    EXPECT_EQ(delta.counter("decide.batch.fused_groups"), 2u);
    EXPECT_EQ(delta.counter("decide.batch.fused_queries"), 4u);
    EXPECT_EQ(delta.counter("decide.batch.arena_reuse"), 0u);
}

TEST(DecideBatch, EmptyBatchIsANoOp)
{
    DecisionCache cache(1 << 8);
    EXPECT_TRUE(decideBatch({}, &cache).empty());
}

} // namespace
} // namespace gam::harness
