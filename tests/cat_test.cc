/**
 * Unit tests for the cat model DSL: the bitset relation algebra, the
 * lexer/parser and its recoverable diagnostics (line/column, unbound
 * names, type mismatches, non-monotone recursion), evaluator
 * semantics including `let rec` fixpoints, the builtin model registry
 * and its agreement with both the engine registry and the shipped
 * files under models/.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cat/engine.hh"
#include "cat/eval.hh"
#include "cat/exec.hh"
#include "cat/parser.hh"
#include "cat/rel.hh"
#include "model/engine.hh"

namespace gam::cat
{
namespace
{

// ------------------------------------------------- relation algebra

Rel
fromPairs(size_t n, std::initializer_list<std::pair<int, int>> pairs)
{
    Rel r(n);
    for (auto [i, j] : pairs)
        r.set(size_t(i), size_t(j));
    return r;
}

TEST(CatRel, BasicOps)
{
    const Rel a = fromPairs(3, {{0, 1}, {1, 2}});
    const Rel b = fromPairs(3, {{1, 2}, {2, 0}});

    EXPECT_EQ((a | b), fromPairs(3, {{0, 1}, {1, 2}, {2, 0}}));
    EXPECT_EQ((a & b), fromPairs(3, {{1, 2}}));
    EXPECT_EQ(a.minus(b), fromPairs(3, {{0, 1}}));
    EXPECT_EQ(a.compose(b), fromPairs(3, {{0, 2}, {1, 0}}));
    EXPECT_EQ(a.inverse(), fromPairs(3, {{1, 0}, {2, 1}}));
    EXPECT_EQ(a.transitiveClosure(),
              fromPairs(3, {{0, 1}, {1, 2}, {0, 2}}));
    EXPECT_EQ(a.reflexiveTransitiveClosure(),
              fromPairs(3, {{0, 0}, {1, 1}, {2, 2},
                            {0, 1}, {1, 2}, {0, 2}}));
    EXPECT_TRUE(a.acyclic());
    EXPECT_FALSE((a | b).acyclic());
    EXPECT_TRUE(a.irreflexive());
    EXPECT_FALSE(fromPairs(2, {{1, 1}}).irreflexive());
    EXPECT_TRUE(Rel(4).empty());
    EXPECT_EQ(a.count(), 2u);
}

TEST(CatRel, ComplementRespectsUniverse)
{
    // A 65-event universe exercises the word-boundary tail mask.
    const size_t n = 65;
    Rel r(n);
    r.set(0, 64);
    const Rel c = r.complement();
    EXPECT_FALSE(c.test(0, 64));
    EXPECT_TRUE(c.test(64, 0));
    EXPECT_EQ(c.count(), n * n - 1);
    EXPECT_EQ(c.complement(), r);
}

TEST(CatRel, DiagAndProduct)
{
    EventSet s(4), t(4);
    s.set(1);
    s.set(3);
    t.set(0);
    EXPECT_EQ(Rel::diag(s), fromPairs(4, {{1, 1}, {3, 3}}));
    EXPECT_EQ(Rel::product(s, t), fromPairs(4, {{1, 0}, {3, 0}}));
    EXPECT_EQ(s.complement().count(), 2u);
    EXPECT_EQ((s | t).count(), 3u);
    EXPECT_TRUE((s & t).empty());
    EXPECT_EQ(s.minus(t).count(), 2u);
}

// ---------------------------------------------------------- parsing

TEST(CatParse, AcceptsAModelWithHeaderAndAxioms)
{
    const auto r = parseCat("\"MyModel\"\n"
                            "let hb = po | rf\n"
                            "acyclic hb as Happens\n"
                            "irreflexive hb; hb\n"
                            "empty 0 as Nothing\n");
    ASSERT_TRUE(r.ok()) << r.error.toString();
    EXPECT_EQ(r.model->name, "MyModel");
    EXPECT_EQ(r.model->definitionNames,
              std::vector<std::string>{"hb"});
    EXPECT_EQ(r.model->axiomNames,
              (std::vector<std::string>{"Happens", "irreflexive #2",
                                        "Nothing"}));
}

TEST(CatParse, DefaultNameComesFromTheCaller)
{
    const auto r = parseCat("acyclic po", "my-file");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.model->name, "my-file");
}

TEST(CatParse, CommentsNestAndLineCommentsWork)
{
    const auto r = parseCat("(* outer (* inner *) still out *)\n"
                            "// a line comment\n"
                            "acyclic po // trailing\n");
    EXPECT_TRUE(r.ok()) << r.error.toString();
}

/** Expect a diagnostic mentioning @p what at @p line. */
void
expectError(const std::string &source, int line,
            const std::string &what)
{
    const auto r = parseCat(source);
    ASSERT_FALSE(r.ok()) << "'" << source << "' parsed unexpectedly";
    EXPECT_EQ(r.error.line, line) << r.error.toString();
    EXPECT_NE(r.error.message.find(what), std::string::npos)
        << r.error.toString();
    // The display form always carries the position.
    EXPECT_NE(r.error.toString().find("line"), std::string::npos);
}

TEST(CatParse, DiagnosesUnbalancedParens)
{
    expectError("let x = (po | rf\nacyclic x", 1, "unbalanced '('");
    expectError("let x = [R\nacyclic x", 1, "unbalanced '['");
    expectError("let x = po)\nacyclic x", 1, "expected");
}

TEST(CatParse, DiagnosesUnknownPrimitivesAndUnboundNames)
{
    expectError("acyclic fencedep", 1, "unbound name 'fencedep'");
    expectError("let a = po\nacyclic b", 2, "unbound name 'b'");
    // Use before definition is unbound too (lets are ordered).
    expectError("acyclic hb\nlet hb = po", 1, "unbound name 'hb'");
}

TEST(CatParse, DiagnosesTypeMismatches)
{
    expectError("acyclic po & R", 1, "type mismatch");
    expectError("acyclic R; W", 1, "needs a relation");
    expectError("acyclic [po]", 1, "needs a set");
    expectError("acyclic po * W", 1, "needs a set");
    expectError("acyclic R", 1, "needs a relation, not a set");
    expectError("acyclic R+", 1, "needs a relation");
}

TEST(CatParse, DiagnosesNonTerminatingLookingLetRec)
{
    // Complement of the recursive name: the fixpoint may oscillate.
    expectError("let rec x = ~x\nacyclic x", 1,
                "non-monotonically");
    // Recursive name on the right of a difference.
    expectError("let rec x = po \\ x\nacyclic x", 1,
                "non-monotonically");
    // ... even nested, or through the group partner.
    expectError("let rec a = po and b = rf \\ (a; po)\nacyclic b", 1,
                "non-monotonically");
    // Recursive sets are not supported.
    expectError("let rec s = R\nacyclic [s]", 1,
                "must be a relation");
    // Positive recursion is fine.
    EXPECT_TRUE(parseCat("let rec x = po | (x; x)\nacyclic x").ok());
    // A non-recursive difference inside a let rec body is fine too.
    EXPECT_TRUE(
        parseCat("let rec x = (po \\ id) | (x; x)\nacyclic x").ok());
}

TEST(CatParse, DiagnosesLexicalErrors)
{
    expectError("acyclic po ^ rf", 1, "expected '^-1'");
    expectError("let x = po @ rf", 1, "unexpected character");
    expectError("\"unterminated\nacyclic po", 1,
                "unterminated string");
    expectError("(* never closed\nacyclic po", 1,
                "unterminated comment");
    expectError("let = po", 1, "expected a definition name");
    expectError("po | rf", 1, "expected 'let'");
}

TEST(CatParse, PositionsAreOneBasedAndColumnAware)
{
    const auto r = parseCat("let ok = po\nlet bad = nosuch\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error.line, 2);
    EXPECT_EQ(r.error.col, 11);
}

// ------------------------------------------------------- evaluation

/** A tiny hand-built execution: 2 threads, 4 memory events.
 *  t0: W x (0), R x (1);  t1: W x (2), F.ll (3), R y (4). */
ExecView
tinyView()
{
    ExecView v;
    const size_t n = 5;
    v.n = n;
    v.R = EventSet(n);
    v.W = EventSet(n);
    v.M = EventSet(n);
    v.F = EventSet(n);
    v.RMW = EventSet(n);
    v.FLL = EventSet(n);
    v.FLS = EventSet(n);
    v.FSL = EventSet(n);
    v.FSS = EventSet(n);
    v.po = Rel(n);
    v.rf = Rel(n);
    v.co = Rel(n);
    v.fr = Rel(n);
    v.loc = Rel(n);
    v.ext = Rel(n);
    v.int_ = Rel(n);
    v.addr = Rel(n);
    v.data = Rel(n);
    v.ctrl = Rel(n);
    v.id = Rel::identity(n);

    v.W.set(0);
    v.R.set(1);
    v.W.set(2);
    v.F.set(3);
    v.FLL.set(3);
    v.R.set(4);
    v.M = v.R | v.W;

    v.po.set(0, 1);
    v.po.set(2, 3);
    v.po.set(2, 4);
    v.po.set(3, 4);
    // x events: 0, 1, 2; y events: 4.
    v.loc.set(0, 1);
    v.loc.set(1, 0);
    v.loc.set(0, 2);
    v.loc.set(2, 0);
    v.loc.set(1, 2);
    v.loc.set(2, 1);
    v.rf.set(2, 1);  // t0's read takes t1's store
    v.co.set(0, 2);
    v.fr.set(1, 2);  // placeholder fr; not used by these tests
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const bool same = (i <= 1) == (j <= 1);
            (same ? v.int_ : v.ext).set(i, j);
        }
    }
    return v;
}

/** Evaluate @p name in @p source over the tiny execution. */
Value
evalName(const std::string &source, const std::string &name)
{
    const auto parsed = parseCat(source);
    EXPECT_TRUE(parsed.ok()) << parsed.error.toString();
    Evaluator eval(*parsed.model);
    const ExecView v = tinyView();
    EXPECT_TRUE(eval.check(v)) << eval.failedAxiom();
    return eval.valueOf(name);
}

TEST(CatEval, OperatorsMatchTheAlgebra)
{
    const ExecView v = tinyView();
    EXPECT_EQ(evalName("let x = po | rf\nacyclic x", "x").rel,
              (v.po | v.rf));
    EXPECT_EQ(evalName("let x = po; rf\nacyclic x", "x").rel,
              v.po.compose(v.rf));
    EXPECT_EQ(evalName("let x = po & loc\nacyclic x", "x").rel,
              (v.po & v.loc));
    EXPECT_EQ(evalName("let x = po \\ loc\nacyclic x", "x").rel,
              v.po.minus(v.loc));
    EXPECT_EQ(evalName("let x = rf^-1\nacyclic x", "x").rel,
              v.rf.inverse());
    EXPECT_EQ(evalName("let x = po+\nacyclic x", "x").rel,
              v.po.transitiveClosure());
    EXPECT_EQ(evalName("let x = po*\nempty x & 0", "x").rel,
              v.po.reflexiveTransitiveClosure());
    EXPECT_EQ(evalName("let x = ~po\nempty x & 0", "x").rel,
              v.po.complement());
    EXPECT_EQ(evalName("let x = W * R\nacyclic x & po", "x").rel,
              Rel::product(v.W, v.R));
    EXPECT_EQ(evalName("let x = [W]; po; [R]\nacyclic x", "x").rel,
              Rel::diag(v.W).compose(v.po).compose(Rel::diag(v.R)));
    EXPECT_EQ(evalName("let s = M \\ W\nirreflexive [s] \\ id", "s")
                  .set,
              v.M.minus(v.W));
    EXPECT_EQ(evalName("let x = id\nirreflexive x \\ id", "x").rel,
              Rel::identity(v.n));
}

TEST(CatEval, ProductVersusClosureDisambiguation)
{
    // 'W * R' is a product; 'po*' a closure; both in one expression.
    const Value val =
        evalName("let x = po* & (M * M)\nempty x & 0", "x");
    const ExecView v = tinyView();
    EXPECT_EQ(val.rel, (v.po.reflexiveTransitiveClosure()
                        & Rel::product(v.M, v.M)));
}

TEST(CatEval, PolymorphicZeroAdaptsInEveryContext)
{
    // 0 denotes the empty set in set-demanding contexts and the empty
    // relation elsewhere -- including nested all-zero subtrees, which
    // once crashed the evaluator instead of coercing.
    const ExecView v = tinyView();
    EXPECT_EQ(evalName("let x = [0]\nempty x", "x").rel, Rel(v.n));
    EXPECT_EQ(evalName("let x = 0 * W\nempty x", "x").rel, Rel(v.n));
    EXPECT_EQ(evalName("let x = W * 0\nempty x", "x").rel, Rel(v.n));
    EXPECT_EQ(evalName("let x = [0 | 0]\nempty x", "x").rel, Rel(v.n));
    EXPECT_EQ(evalName("let x = [(0 & 0) \\ 0]\nempty x", "x").rel,
              Rel(v.n));
    EXPECT_EQ(evalName("let x = R | 0\nempty [x] \\ [R]", "x").set,
              v.R);
    EXPECT_EQ(evalName("let x = 0 | po\nacyclic x", "x").rel, v.po);
    EXPECT_EQ(evalName("let x = 0; po\nempty x", "x").rel, Rel(v.n));
    EXPECT_EQ(evalName("let x = 0+\nempty x | ~~0", "x").rel,
              Rel(v.n));
    EXPECT_EQ(evalName("let y = 0\nlet x = [y]\nempty x", "x").rel,
              Rel(v.n));
}

TEST(CatEval, LetRecComputesTheLeastFixpoint)
{
    // Recursive transitive closure must equal the builtin '+'.
    const Value rec = evalName(
        "let rec tc = (po | rf) | (tc; (po | rf))\nacyclic tc", "tc");
    const ExecView v = tinyView();
    EXPECT_EQ(rec.rel, (v.po | v.rf).transitiveClosure());

    // A mutually recursive group.
    const Value mut = evalName(
        "let rec a = po | (b; po) and b = rf | (a; rf)\nacyclic 0",
        "a");
    EXPECT_FALSE(mut.rel.empty());
}

TEST(CatEval, AxiomsRejectAndReportByName)
{
    const auto parsed = parseCat("irreflexive po\n"
                                 "acyclic po | po^-1 as NoTurning\n");
    ASSERT_TRUE(parsed.ok());
    Evaluator eval(*parsed.model);
    EXPECT_FALSE(eval.check(tinyView()));
    // irreflexive po passes; the cycle po | po^-1 fails by name.
    EXPECT_EQ(eval.failedAxiom(), "NoTurning");

    const auto empties = parseCat("empty rf as NoReads");
    ASSERT_TRUE(empties.ok());
    Evaluator eval2(*empties.model);
    EXPECT_FALSE(eval2.check(tinyView()));
    EXPECT_EQ(eval2.failedAxiom(), "NoReads");

    const auto passing = parseCat("acyclic po | rf | co\n"
                                  "empty rf & co\n"
                                  "empty [F] & [M]\n");
    ASSERT_TRUE(passing.ok());
    Evaluator eval3(*passing.model);
    EXPECT_TRUE(eval3.check(tinyView())) << eval3.failedAxiom();
    EXPECT_EQ(eval3.failedAxiom(), "");
}

// ------------------------------------------------ builtin registry

TEST(CatRegistry, BuiltinModelsAgreeWithTheEngineRegistry)
{
    using model::Engine;
    using model::ModelKind;
    // Every kind the registry claims Engine::Cat supports must have a
    // builtin model, and vice versa.
    for (ModelKind kind : model::allModelKinds) {
        const bool supported = model::supportsEngine(kind, Engine::Cat);
        const CatModel *m =
            findBuiltinCatModel(model::modelName(kind));
        EXPECT_EQ(supported, m != nullptr)
            << model::modelName(kind);
        if (m) {
            EXPECT_EQ(catModelKind(*m), kind);
        }
    }
    EXPECT_EQ(builtinCatModels().size(), 4u);
    EXPECT_EQ(findBuiltinCatModel("nope"), nullptr);
    // Case-insensitive lookup.
    EXPECT_NE(findBuiltinCatModel("gam0"), nullptr);
    EXPECT_NE(findBuiltinCatModel("GAM0"), nullptr);
}

TEST(CatRegistry, EngineNameRoundTrips)
{
    EXPECT_EQ(model::engineName(model::Engine::Cat), "cat");
    EXPECT_EQ(model::engineFromName("cat"), model::Engine::Cat);
}

TEST(CatRegistry, EmbeddedModelsMatchTheShippedFiles)
{
    // The library embeds models/*.cat at build time; the files on
    // disk are the source of truth and must be in sync.
    for (const CatModel *m : builtinCatModels()) {
        std::string stem = m->name;
        for (char &c : stem)
            c = char(std::tolower(static_cast<unsigned char>(c)));
        const std::string path =
            std::string(GAM_MODELS_DIR) + "/" + stem + ".cat";
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << path;
        std::ostringstream text;
        text << in.rdbuf();
        EXPECT_EQ(text.str(), m->source) << path;
    }
}

TEST(CatRegistry, ShippedSourcesReparseToEqualHashes)
{
    for (const CatModel *m : builtinCatModels()) {
        const auto again = parseCat(m->source, m->name);
        ASSERT_TRUE(again.ok()) << m->name;
        EXPECT_EQ(again.model->sourceHash, m->sourceHash);
        EXPECT_EQ(again.model->name, m->name);
    }
}

} // namespace
} // namespace gam::cat
