/** Tests for the cycle-level OOO core and branch predictor. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "isa/assembler.hh"
#include "sim/bpred.hh"
#include "sim/core.hh"
#include "sim/trace_gen.hh"

namespace gam::sim
{
namespace
{

using isa::MemImage;
using isa::Program;
using model::ModelKind;

DynTrace
traceOf(const std::string &asm_text, MemImage mem = {},
        uint64_t max_uops = 100000)
{
    Program p = isa::assemble(asm_text);
    return generateTrace(p, std::move(mem), max_uops);
}

SimStats
simulate(const DynTrace &trace, ModelKind kind = ModelKind::GAM,
         CoreParams params = {})
{
    Core core(trace, kind, params);
    return core.run();
}

TEST(BpredTest, LearnsATightLoop)
{
    BranchPredictor bp(10);
    uint64_t pc = 17;
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        correct += bp.predict(pc) == true;
        bp.update(pc, true);
    }
    // The first ~historyBits updates walk fresh counters while the
    // global history fills with 1s; after that every prediction hits.
    EXPECT_GT(correct, 80);
}

TEST(BpredTest, AdaptsToAlternation)
{
    // With history, the alternating pattern becomes predictable.
    BranchPredictor bp(10);
    uint64_t pc = 5;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        bool dir = i % 2 == 0;
        correct += bp.predict(pc) == dir;
        bp.update(pc, dir);
    }
    EXPECT_GT(correct, 300);
}

TEST(TraceGen, RecordsAddressesAndValues)
{
    DynTrace t = traceOf(R"(
        li r1, 0x1000
        li r2, 9
        st [r1], r2
        ld r3, [r1]
        halt
    )");
    ASSERT_EQ(t.uops.size(), 4u);
    EXPECT_TRUE(t.programCompleted);
    EXPECT_EQ(t.uops[2].addr, 0x1000);
    EXPECT_EQ(t.uops[2].value, 9);
    EXPECT_EQ(t.uops[3].value, 9);
}

TEST(TraceGen, BranchDirections)
{
    DynTrace t = traceOf(R"(
        li r1, 2
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    )");
    // li, addi, bne(taken), addi, bne(not taken)
    ASSERT_EQ(t.uops.size(), 5u);
    EXPECT_TRUE(t.uops[2].taken);
    EXPECT_FALSE(t.uops[4].taken);
    EXPECT_EQ(t.uops[2].nextPc, 1u);
}

TEST(TraceGen, FinalStateMatchesEmulator)
{
    DynTrace t = traceOf("li r1, 3\naddi r2, r1, 4\nhalt\n");
    EXPECT_EQ(t.finalState.reg(isa::R(2)), 7);
}

TEST(CoreTest, CommitsEveryTraceUop)
{
    DynTrace t = traceOf(R"(
        li r1, 50
        li r2, 0
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    SimStats s = simulate(t);
    EXPECT_EQ(s.committedUops, t.uops.size());
    EXPECT_GT(s.cycles, 0u);
    EXPECT_LE(s.upc(), 6.0); // cannot beat the issue width
}

TEST(CoreTest, AllModelsCommitIdentically)
{
    DynTrace t = traceOf(R"(
        li r1, 0x1000
        li r4, 30
    loop:
        st [r1], r4
        ld r2, [r1]
        ld r3, [r1]
        addi r4, r4, -1
        bne r4, r0, loop
        halt
    )");
    for (ModelKind kind : {ModelKind::GAM, ModelKind::ARM,
                           ModelKind::GAM0, ModelKind::AlphaStar}) {
        SimStats s = simulate(t, kind);
        EXPECT_EQ(s.committedUops, t.uops.size())
            << model::modelName(kind);
    }
}

TEST(CoreTest, StoreForwardingHappens)
{
    DynTrace t = traceOf(R"(
        li r1, 0x1000
        li r4, 100
    loop:
        st [r1], r4
        ld r2, [r1]
        addi r4, r4, -1
        bne r4, r0, loop
        halt
    )");
    SimStats s = simulate(t);
    EXPECT_GT(s.storeForwards, 50u);
}

TEST(CoreTest, StoreForwardingAblationStillCorrect)
{
    DynTrace t = traceOf(R"(
        li r1, 0x1000
        li r4, 50
    loop:
        st [r1], r4
        ld r2, [r1]
        addi r4, r4, -1
        bne r4, r0, loop
        halt
    )");
    CoreParams p;
    p.storeForwarding = false;
    SimStats with = simulate(t, ModelKind::GAM);
    SimStats without = simulate(t, ModelKind::GAM, p);
    EXPECT_EQ(without.committedUops, t.uops.size());
    EXPECT_EQ(without.storeForwards, 0u);
    // Forwarding should not hurt.
    EXPECT_LE(with.cycles, without.cycles + 10);
}

TEST(CoreTest, SpeculativeLoadIssueAblation)
{
    DynTrace t = traceOf(R"(
        li r1, 0x1000
        li r2, 0x2000
        li r4, 50
    loop:
        st [r1], r4
        ld r3, [r2]
        addi r4, r4, -1
        bne r4, r0, loop
        halt
    )");
    CoreParams p;
    p.speculativeLoadIssue = false;
    SimStats conservative = simulate(t, ModelKind::GAM, p);
    EXPECT_EQ(conservative.committedUops, t.uops.size());
}

TEST(CoreTest, BranchMispredictsDetected)
{
    // A data-dependent unpredictable branch stream.
    MemImage mem;
    Rng rng(99);
    for (int i = 0; i < 512; ++i)
        mem.store(0x1000 + i * 8, rng.range(2));
    DynTrace t = traceOf(R"(
        li r1, 0x1000
        li r4, 500
    loop:
        ld r2, [r1]
        beq r2, r0, skip
        addi r3, r3, 1
    skip:
        addi r1, r1, 8
        addi r4, r4, -1
        bne r4, r0, loop
        halt
    )", mem);
    SimStats s = simulate(t);
    EXPECT_EQ(s.committedUops, t.uops.size());
    EXPECT_GT(s.branchMispredicts, 50u);
    EXPECT_GT(s.condBranches, 900u);
}

TEST(CoreTest, LateAddressKillsOnlyUnderGam)
{
    // An older load's address resolves (via a slow divide) long after a
    // younger same-address load executed: GAM kills, ARM/GAM0 do not.
    MemImage mem;
    mem.store(0x3000, 0x1000); // pointer to the shared target
    std::string src = R"(
        li r5, 0x3000
        li r6, 0x1000
        li r4, 200
    loop:
        ld r1, [r5]      # r1 = 0x1000 (slow-ish chain below)
        div r1, r1, r7   # delay the address...
        mul r1, r1, r7   # ...and restore it (r7 = 1)
        ld r2, [r1]      # older load, late address
        ld r3, [r6]      # younger same-address load, early
        addi r4, r4, -1
        bne r4, r0, loop
        halt
    )";
    Program p = isa::assemble("li r7, 1\n" + src);
    DynTrace t = generateTrace(p, mem, 100000);

    SimStats gam = simulate(t, ModelKind::GAM);
    SimStats arm = simulate(t, ModelKind::ARM);
    SimStats gam0 = simulate(t, ModelKind::GAM0);
    EXPECT_GT(gam.saLdLdKills, 0u);
    EXPECT_EQ(arm.saLdLdKills, 0u);
    EXPECT_EQ(gam0.saLdLdKills, 0u);
    EXPECT_EQ(gam0.saLdLdStalls, 0u);
    EXPECT_EQ(gam.committedUops, t.uops.size());
}

TEST(CoreTest, LoadLoadForwardingOnlyUnderAlphaStar)
{
    DynTrace t = traceOf(R"(
        li r1, 0x1000
        li r4, 200
    loop:
        ld r2, [r1]
        ld r3, [r1]
        addi r4, r4, -1
        bne r4, r0, loop
        halt
    )");
    SimStats alpha = simulate(t, ModelKind::AlphaStar);
    SimStats gam = simulate(t, ModelKind::GAM);
    SimStats gam0 = simulate(t, ModelKind::GAM0);
    EXPECT_GT(alpha.llForwards, 0u);
    EXPECT_EQ(gam.llForwards, 0u);
    EXPECT_EQ(gam0.llForwards, 0u);
}

TEST(CoreTest, WarmupExcludedFromStats)
{
    DynTrace t = traceOf(R"(
        li r4, 500
    loop:
        addi r4, r4, -1
        bne r4, r0, loop
        halt
    )");
    Core core(t, ModelKind::GAM);
    SimStats s = core.run(400);
    EXPECT_EQ(s.committedUops, t.uops.size() - 400);
}

TEST(CoreTest, MemoryLatencyVisible)
{
    // A pointer chase across many lines is slower than an L1-resident
    // one.
    MemImage far_mem, near_mem;
    for (int i = 0; i < 256; ++i) {
        far_mem.store(0x10000 + i * 4096,
                      0x10000 + ((i + 1) % 256) * 4096);
        near_mem.store(0x10000 + i * 8, 0x10000 + ((i + 1) % 256) * 8);
    }
    std::string src = R"(
        li r1, 0x10000
        li r4, 240
    loop:
        ld r1, [r1]
        addi r4, r4, -1
        bne r4, r0, loop
        halt
    )";
    DynTrace far_t = traceOf(src, far_mem);
    DynTrace near_t = traceOf(src, near_mem);
    SimStats far_s = simulate(far_t);
    SimStats near_s = simulate(near_t);
    EXPECT_GT(far_s.cycles, near_s.cycles * 3);
}

TEST(CoreTest, StatGroupExport)
{
    DynTrace t = traceOf("li r1, 1\nhalt\n");
    SimStats s = simulate(t);
    StatGroup g = s.toStatGroup();
    EXPECT_TRUE(g.has("upc"));
    EXPECT_TRUE(g.has("sa_ldld_kills_per_kuops"));
    EXPECT_DOUBLE_EQ(g.get("committed_uops"), double(s.committedUops));
}

TEST(CoreTest, PerKuopsNormalization)
{
    SimStats s;
    s.committedUops = 2000;
    EXPECT_DOUBLE_EQ(s.perKuops(4), 2.0);
    s.committedUops = 0;
    EXPECT_DOUBLE_EQ(s.perKuops(4), 0.0);
}

} // namespace
} // namespace gam::sim
