/**
 * Differential validation of the incremental pruned enumeration
 * (axiomatic/enumerate.hh) against the legacy enumerate-then-check
 * pipeline: outcome-set parity on every built-in test under every
 * model for both the hand-coded checker and the cat engine, exact
 * work accounting (every candidate the pruned search skips is counted
 * as skipped), parallel-search determinism, the static read-from
 * feasibility analysis, a fixed-seed fuzz smoke, and the 4-thread
 * IRIW/WRC+/W+RWC acceptance bar.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "axiomatic/checker.hh"
#include "cat/engine.hh"
#include "harness/decision.hh"
#include "harness/litmus_runner.hh"
#include "litmus/generator.hh"
#include "litmus/parser.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"

namespace gam::axiomatic
{
namespace
{

using litmus::LitmusTest;
using model::ModelKind;

constexpr ModelKind catModels[] = {ModelKind::SC, ModelKind::TSO,
                                   ModelKind::GAM0, ModelKind::GAM};

/** Every model the axiomatic checker supports. */
std::vector<ModelKind>
axiomaticModels()
{
    std::vector<ModelKind> out;
    for (ModelKind kind : model::allModelKinds)
        if (model::supportsEngine(kind, model::Engine::Axiomatic))
            out.push_back(kind);
    return out;
}

TEST(Enumerate, PrunedMatchesLegacyOnAllBuiltinsEveryModel)
{
    for (const LitmusTest &test : litmus::allTests()) {
        for (ModelKind model : axiomaticModels()) {
            Checker legacy(test, model);
            const litmus::OutcomeSet expect = legacy.enumerateLegacy();
            Checker pruned(test, model);
            const litmus::OutcomeSet got = pruned.enumerate();
            EXPECT_EQ(got, expect)
                << test.name << " " << model::modelName(model);

            // Exact work accounting: every complete candidate is
            // either materialized or counted as skipped...
            const CheckerStats &ls = legacy.stats();
            const CheckerStats &ps = pruned.stats();
            EXPECT_EQ(ps.coCandidates + ps.subtreesSkipped,
                      ls.coCandidates)
                << test.name << " " << model::modelName(model);
            // ... and every read-from map is either tried or
            // statically skipped (static skips are value-inconsistent,
            // so they contribute no candidates above).
            EXPECT_EQ(ps.rfCandidates + ps.rfStaticSkipped,
                      ls.rfCandidates)
                << test.name << " " << model::modelName(model);
            EXPECT_EQ(ps.valueConsistent, ls.valueConsistent)
                << test.name << " " << model::modelName(model);
            EXPECT_EQ(ps.accepted, ls.accepted);
        }
    }
}

TEST(Enumerate, CatEngineMatchesItsLegacyPathOnAllBuiltins)
{
    for (const LitmusTest &test : litmus::allTests()) {
        for (ModelKind model : catModels) {
            const cat::CatModel &cm = cat::builtinCatModel(model);
            cat::CatEngine legacy(test, cm);
            const litmus::OutcomeSet expect = legacy.enumerateLegacy();
            cat::CatEngine pruned(test, cm);
            const litmus::OutcomeSet got = pruned.enumerate();
            EXPECT_EQ(got, expect)
                << test.name << " " << model::modelName(model);
            EXPECT_EQ(pruned.stats().coCandidates
                          + pruned.stats().subtreesSkipped,
                      legacy.stats().coCandidates)
                << test.name << " " << model::modelName(model);
        }
    }
}

TEST(Enumerate, FilteredWrapperReplaysTheFullCandidateStream)
{
    // enumerateFiltered() is a compatibility wrapper over the new
    // core: a pruning-free filter must see exactly the candidate
    // stream the legacy pipeline produced.
    for (const char *name : {"mp", "sb_fenced", "rmw_mutex", "corr"}) {
        const LitmusTest &test = litmus::testByName(name);
        uint64_t seen = 0;
        Checker wrapped(test, ModelKind::GAM);
        const litmus::OutcomeSet all = wrapped.enumerateFiltered(
            [&](const CandidateExecution &cand) {
                EXPECT_TRUE(cand.complete);
                ++seen;
                return true;
            });
        uint64_t legacy_seen = 0;
        Checker legacy(test, ModelKind::GAM);
        const litmus::OutcomeSet legacy_all =
            legacy.enumerateFilteredLegacy(
                [&](const CandidateExecution &) {
                    ++legacy_seen;
                    return true;
                });
        EXPECT_EQ(all, legacy_all) << name;
        EXPECT_EQ(seen, legacy_seen) << name;
        EXPECT_EQ(wrapped.stats().coCandidates, seen) << name;
    }
}

TEST(Enumerate, ParallelPrefixSearchIsDeterministic)
{
    for (const char *name : {"iriw", "dekker", "wrc_dep", "2+2w"}) {
        const LitmusTest &test = litmus::testByName(name);
        for (ModelKind model : {ModelKind::SC, ModelKind::GAM}) {
            Options serial;
            serial.searchThreads = 1;
            Checker one(test, model, serial);
            const litmus::OutcomeSet serial_out = one.enumerate();

            Options wide;
            wide.searchThreads = 4;
            Checker four(test, model, wide);
            const litmus::OutcomeSet parallel_out = four.enumerate();

            EXPECT_EQ(parallel_out, serial_out) << name;
            // The merged counters must not depend on scheduling.
            EXPECT_EQ(four.stats().coCandidates,
                      one.stats().coCandidates)
                << name;
            EXPECT_EQ(four.stats().subtreesSkipped,
                      one.stats().subtreesSkipped)
                << name;
            EXPECT_EQ(four.stats().accepted, one.stats().accepted)
                << name;
        }
    }
}

TEST(Enumerate, StaticFeasibilityPrunesConstantAddressesOnly)
{
    // mp: two loads, two stores to distinct constant addresses -- each
    // load keeps InitStore plus its own same-address store.
    {
        CandidateBuilder builder(litmus::testByName("mp"), {});
        ASSERT_EQ(builder.rfChoices().size(), 2u);
        for (const auto &choices : builder.rfChoices())
            EXPECT_EQ(choices.size(), 2u);
        EXPECT_GT(builder.rfStaticSkipped(), 0u);
    }
    // mp_addr: the second load's address depends on the first load's
    // value, so the analysis must keep every source for it.
    {
        const LitmusTest &test = litmus::testByName("mp_addr");
        CandidateBuilder builder(test, {});
        size_t stores = builder.storeSites().size();
        bool any_full = false;
        for (const auto &choices : builder.rfChoices())
            any_full |= choices.size() == stores + 1;
        EXPECT_TRUE(any_full)
            << "dependent-address load lost feasible sources";
    }
}

TEST(Enumerate, PruningActuallyPrunes)
{
    // Under SC almost every interleaving-violating candidate dies
    // early: the pruned search must materialize strictly fewer
    // complete candidates than the legacy pipeline on iriw.
    const LitmusTest &test = litmus::testByName("iriw");
    Checker legacy(test, ModelKind::SC);
    legacy.enumerateLegacy();
    Checker pruned(test, ModelKind::SC);
    pruned.enumerate();
    EXPECT_LT(pruned.stats().coCandidates,
              legacy.stats().coCandidates);
    EXPECT_GT(pruned.stats().subtreesSkipped
                  + pruned.stats().rfStaticSkipped,
              0u);
}

TEST(Enumerate, FuzzSmokeNewVersusLegacyAtFixedSeed)
{
    // A deterministic mini-campaign: generated tests, both engines,
    // new vs legacy outcome parity under every cat model.
    constexpr uint64_t seed = 31;
    for (uint64_t i = 0; i < 25; ++i) {
        const LitmusTest test = litmus::generateTest(seed, i);
        ASSERT_FALSE(test.check().has_value()) << *test.check();
        for (ModelKind model : catModels) {
            Checker legacy(test, model);
            const litmus::OutcomeSet expect = legacy.enumerateLegacy();
            Checker pruned(test, model);
            EXPECT_EQ(pruned.enumerate(), expect)
                << "seed " << seed << " index " << i << " "
                << model::modelName(model);
        }
        // The cat engine on a sample of the stream (it costs ~2x).
        if (i % 5 == 0) {
            const cat::CatModel &cm =
                cat::builtinCatModel(ModelKind::GAM);
            cat::CatEngine legacy_cat(test, cm);
            cat::CatEngine pruned_cat(test, cm);
            EXPECT_EQ(pruned_cat.enumerate(),
                      legacy_cat.enumerateLegacy())
                << "seed " << seed << " index " << i;
        }
    }
}

TEST(Enumerate, FourThreadSuiteShapes)
{
    const auto &suite = litmus::fourThreadSuite();
    ASSERT_EQ(suite.size(), 8u);
    std::set<std::string> names;
    for (const LitmusTest &test : suite) {
        EXPECT_FALSE(test.check().has_value())
            << test.name << ": " << *test.check();
        names.insert(test.name);
    }
    EXPECT_EQ(names.size(), suite.size()) << "duplicate names";

    // The IRIW family is genuinely 4-threaded; WRC/W+RWC are 3.
    for (const char *name : {"iriw_pos", "iriw_addrs", "iriw_fences",
                             "wrc_coe_w"}) {
        const auto it = std::find_if(
            suite.begin(), suite.end(),
            [&](const LitmusTest &t) { return t.name == name; });
        ASSERT_NE(it, suite.end()) << name;
        EXPECT_EQ(it->threads.size(), 4u) << name;
    }
}

TEST(Enumerate, FourThreadCorpusIsPinnedAndCurrent)
{
    // tests/corpus/<name>.litmus pins each named-family test with its
    // per-model verdicts.  Regenerate with
    // `gam-litmus gen --four-thread --out tests/corpus` on mismatch.
    const std::vector<ModelKind> models(std::begin(catModels),
                                        std::end(catModels));
    for (LitmusTest test : litmus::fourThreadSuite()) {
        harness::annotateExpected(test, models);
        const std::string path = std::string(GAM_CORPUS_DIR) + "/"
            + test.name + ".litmus";
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << "missing pinned corpus file " << path;
        std::ostringstream pinned;
        pinned << in.rdbuf();
        EXPECT_EQ(pinned.str(), litmus::printLitmus(test))
            << path << " is stale";
    }
}

TEST(Enumerate, TestFromCycleRejectsUnrealisableSpecs)
{
    using K = litmus::CycleEdge;
    // One communication edge only: no cycle across threads.
    EXPECT_FALSE(litmus::testFromCycle(
        "bad", {{K::Kind::Rfe}, {K::Kind::Po}, {K::Kind::Po}}, 2));
    // A location walk that does not close.
    EXPECT_FALSE(litmus::testFromCycle(
        "bad",
        {{K::Kind::Rfe}, {K::Kind::Po, isa::FenceKind::SS, 1},
         {K::Kind::Fre}},
        2));
    // Too short.
    EXPECT_FALSE(litmus::testFromCycle(
        "bad", {{K::Kind::Rfe}, {K::Kind::Fre}}, 2));
}

TEST(Enumerate, FourThreadIriwDecidedCompleteByBothEngines)
{
    // The acceptance bar: a 4-thread IRIW-family test decided to
    // completion by the axiomatic *and* cat engines within default
    // budgets, with the expected per-model verdicts.
    const auto &suite = litmus::fourThreadSuite();
    const auto iriw = std::find_if(
        suite.begin(), suite.end(),
        [](const LitmusTest &t) { return t.name == "iriw_pos"; });
    ASSERT_NE(iriw, suite.end());

    const std::map<ModelKind, bool> expect = {
        {ModelKind::SC, false},
        {ModelKind::TSO, false},
        {ModelKind::GAM0, true},
        {ModelKind::GAM, true},
    };
    harness::DecisionCache cache;
    for (auto [model, allowed] : expect) {
        for (auto engine : {harness::EngineSelect::Axiomatic,
                            harness::EngineSelect::Cat}) {
            harness::Query query;
            query.test = &*iriw;
            query.model = model;
            query.engine = engine;
            const harness::Decision d = harness::decide(query, &cache);
            EXPECT_TRUE(d.complete)
                << model::modelName(model) << " "
                << model::engineName(d.engine);
            EXPECT_EQ(d.allowed, allowed)
                << model::modelName(model) << " "
                << model::engineName(d.engine);
            EXPECT_TRUE(
                model::engineUsesCandidateEnumeration(d.engine));
            EXPECT_GT(d.enumStats.rfCandidates, 0u);
        }
    }
}

TEST(Enumerate, DecisionCarriesEnumerationCounters)
{
    const LitmusTest &test = litmus::testByName("iriw");
    harness::DecisionCache cache;
    harness::Query query;
    query.test = &test;
    query.model = ModelKind::SC;
    query.engine = harness::EngineSelect::Axiomatic;
    const harness::Decision cold = harness::decide(query, &cache);
    EXPECT_GT(cold.enumStats.rfCandidates, 0u);
    EXPECT_GT(cold.enumStats.subtreesSkipped
                  + cold.enumStats.rfStaticSkipped,
              0u);
    // Cached decisions replay the counters of the producing run.
    const harness::Decision warm = harness::decide(query, &cache);
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(warm.enumStats.rfCandidates, cold.enumStats.rfCandidates);
    EXPECT_EQ(warm.enumStats.subtreesSkipped,
              cold.enumStats.subtreesSkipped);

    // Operational decisions carry no enumeration counters.
    query.engine = harness::EngineSelect::Operational;
    const harness::Decision op = harness::decide(query, &cache);
    EXPECT_EQ(op.enumStats.rfCandidates, 0u);
    EXPECT_EQ(op.enumStats.coCandidates, 0u);
}

} // namespace
} // namespace gam::axiomatic
