/**
 * Tests for the observability layer: the metric registry (counters,
 * gauges, log-scale histograms), snapshot exposition and parsing
 * (text, JSON golden + round-trip, Prometheus), the trace collector
 * (Chrome JSON round-trip with span nesting, ring overflow), the
 * pluggable log sink, and the decide() pipeline's metric invariant.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "harness/decision.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace gam::obs
{
namespace
{

// ----------------------------------------------------------- registry

TEST(Registry, CountersGaugesAndHistogramsAreNamedSingletons)
{
    MetricRegistry reg;
    Counter &c = reg.counter("a.b");
    c.inc();
    c.inc(4);
    EXPECT_EQ(reg.counter("a.b").value(), 5u);
    EXPECT_EQ(&reg.counter("a.b"), &c);

    reg.gauge("g").set(2.5);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);

    Histogram &h = reg.histogram("h");
    h.sample(10);
    EXPECT_EQ(reg.histogram("h").count(), 1u);

    // reset() zeroes values but keeps every reference valid.
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
    c.inc();
    EXPECT_EQ(reg.counter("a.b").value(), 1u);
}

TEST(Registry, ReRegisteringUnderAnotherKindPanics)
{
    MetricRegistry reg;
    reg.counter("x");
    EXPECT_DEATH(reg.gauge("x"), "registered");
}

TEST(Registry, HistogramBucketsAreLog2)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Histogram::bucketOf(8), 4u);
    EXPECT_EQ(Histogram::bucketOf(~0ull), 64u);

    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(3), 7u);

    Histogram h;
    h.sample(0);
    h.sample(5);
    h.sample(6);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 11u);
    EXPECT_EQ(h.max(), 6u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.bucketCount(2), 0u);
}

TEST(Registry, ConcurrentUpdatesAreRaceFreeAndExact)
{
    // Hammer one counter, gauge and histogram from many threads; run
    // under TSan in CI.  Counter totals and histogram count/sum are
    // exact because every update is a single atomic RMW.
    MetricRegistry reg;
    constexpr int Threads = 8;
    constexpr uint64_t PerThread = 20000;

    std::vector<std::thread> workers;
    for (int t = 0; t < Threads; ++t) {
        workers.emplace_back([&reg, t] {
            Counter &c = reg.counter("hammer.count");
            Histogram &h = reg.histogram("hammer.hist");
            Gauge &g = reg.gauge("hammer.gauge");
            for (uint64_t i = 0; i < PerThread; ++i) {
                c.inc();
                h.sample(i & 0xff);
                g.set(double(t));
                if ((i & 0x3ff) == 0)
                    (void)reg.snapshot();
            }
        });
    }
    for (auto &w : workers)
        w.join();

    const MetricSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("hammer.count"), Threads * PerThread);
    EXPECT_EQ(snap.histograms.at("hammer.hist").count,
              Threads * PerThread);
    EXPECT_EQ(snap.histograms.at("hammer.hist").max, 0xffu);
    const double g = snap.gauge("hammer.gauge");
    EXPECT_GE(g, 0.0);
    EXPECT_LT(g, double(Threads));
}

TEST(Registry, MetricSegmentFoldsArbitraryText)
{
    EXPECT_EQ(metricSegment("Alpha*"), "alpha_");
    EXPECT_EQ(metricSegment("GAM0"), "gam0");
    EXPECT_EQ(metricSegment("per-loc SC"), "per_loc_sc");
    EXPECT_EQ(metricSegment("a.b"), "a.b");
}

// ---------------------------------------------------------- snapshots

MetricSnapshot
sampleSnapshot()
{
    MetricRegistry reg;
    reg.counter("a.b").inc(3);
    reg.gauge("g.rate").set(0.5);
    reg.histogram("h.us").sample(0);
    reg.histogram("h.us").sample(5);
    reg.histogram("h.us").sample(6);
    return reg.snapshot();
}

TEST(Snapshot, JsonGolden)
{
    // The v1 schema is an artifact format (campaign_metrics.json,
    // BENCH_*.json); pin it byte-for-byte.
    EXPECT_EQ(sampleSnapshot().toJson(),
              "{\n"
              "  \"schema\": \"gam-metrics-v1\",\n"
              "  \"counters\": {\n"
              "    \"a.b\": 3\n"
              "  },\n"
              "  \"gauges\": {\n"
              "    \"g.rate\": 0.5\n"
              "  },\n"
              "  \"histograms\": {\n"
              "    \"h.us\": {\"count\": 3, \"sum\": 11, \"max\": 6, "
              "\"buckets\": [[0, 1], [3, 2]]}\n"
              "  }\n"
              "}\n");
}

TEST(Snapshot, JsonRoundTripsExactly)
{
    const MetricSnapshot snap = sampleSnapshot();
    const auto parsed = MetricSnapshot::fromJson(snap.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(*parsed == snap);

    // Doubles survive exactly (shortest round-trip rendering).
    MetricRegistry reg;
    reg.gauge("pi").set(3.141592653589793);
    reg.gauge("tiny").set(1e-300);
    const MetricSnapshot doubles = reg.snapshot();
    const auto parsed2 = MetricSnapshot::fromJson(doubles.toJson());
    ASSERT_TRUE(parsed2.has_value());
    EXPECT_TRUE(*parsed2 == doubles);
}

TEST(Snapshot, FromJsonRejectsForeignDocuments)
{
    EXPECT_FALSE(MetricSnapshot::fromJson("").has_value());
    EXPECT_FALSE(MetricSnapshot::fromJson("{}").has_value());
    EXPECT_FALSE(
        MetricSnapshot::fromJson("{\"schema\": \"gam-metrics-v2\"}")
            .has_value());
    const std::string good = sampleSnapshot().toJson();
    EXPECT_FALSE(MetricSnapshot::fromJson(good + "x").has_value());
}

TEST(Snapshot, DeltaSubtractsCountersAndKeepsGauges)
{
    MetricRegistry reg;
    reg.counter("c").inc(10);
    reg.gauge("g").set(1.0);
    reg.histogram("h").sample(4);
    const MetricSnapshot before = reg.snapshot();

    reg.counter("c").inc(5);
    reg.gauge("g").set(2.0);
    reg.histogram("h").sample(4);
    reg.histogram("h").sample(100);
    reg.counter("fresh").inc(2);
    const MetricSnapshot after = reg.snapshot();

    const MetricSnapshot d = after.delta(before);
    EXPECT_EQ(d.counter("c"), 5u);
    EXPECT_EQ(d.counter("fresh"), 2u);
    EXPECT_DOUBLE_EQ(d.gauge("g"), 2.0);
    EXPECT_EQ(d.histograms.at("h").count, 2u);
    EXPECT_EQ(d.histograms.at("h").sum, 104u);
    EXPECT_EQ(d.histograms.at("h").max, 100u);

    // A reset in between must saturate at zero, not wrap.
    reg.reset();
    const MetricSnapshot wrapped = reg.snapshot().delta(before);
    EXPECT_EQ(wrapped.counter("c"), 0u);
}

TEST(Snapshot, TextAndPrometheusExposition)
{
    const MetricSnapshot snap = sampleSnapshot();
    const std::string text = snap.toText();
    EXPECT_NE(text.find("a.b"), std::string::npos);
    EXPECT_NE(text.find("count 3, mean 3.666"), std::string::npos);
    EXPECT_NE(text.find("max 6"), std::string::npos);

    const std::string prom = snap.toPrometheus();
    EXPECT_NE(prom.find("# TYPE gam_a_b counter\ngam_a_b 3\n"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE gam_g_rate gauge"), std::string::npos);
    // Histogram buckets are cumulative with le labels.
    EXPECT_NE(prom.find("gam_h_us_bucket{le=\"0\"} 1"),
              std::string::npos);
    EXPECT_NE(prom.find("gam_h_us_bucket{le=\"7\"} 3"),
              std::string::npos);
    EXPECT_NE(prom.find("gam_h_us_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(prom.find("gam_h_us_count 3"), std::string::npos);
}

// ------------------------------------------------------------ tracing

/** One parsed Chrome trace event. */
struct ParsedEvent
{
    std::string name;
    unsigned tid = 0;
    double ts = 0.0;
    double dur = 0.0;
    uint64_t id = 0;
};

/**
 * Parse exportChromeJson() output: one "ph":"X" complete event per
 * line, exactly as chrome://tracing consumes it.
 */
std::vector<ParsedEvent>
parseChromeTrace(const std::string &json)
{
    EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    std::vector<ParsedEvent> events;
    size_t pos = 0;
    while ((pos = json.find("{\"name\": \"", pos)) != std::string::npos) {
        char name[64] = {};
        ParsedEvent e;
        unsigned long long id = 0;
        const int matched = std::sscanf(
            json.c_str() + pos,
            "{\"name\": \"%63[^\"]\", \"cat\": \"gam\", "
            "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, \"ts\": %lf, "
            "\"dur\": %lf, \"args\": {\"id\": %llu}}",
            name, &e.tid, &e.ts, &e.dur, &id);
        EXPECT_EQ(matched, 5) << json.substr(pos, 120);
        e.name = name;
        e.id = id;
        events.push_back(e);
        ++pos;
    }
    return events;
}

TEST(Trace, ChromeJsonRoundTripsWithProperNesting)
{
    TraceCollector &collector = TraceCollector::instance();
    collector.clear();
    collector.enable();
    {
        TraceSpan outer("outer");
        EXPECT_GT(outer.id(), 0u);
        {
            TraceSpan inner("inner");
            EXPECT_GT(inner.id(), outer.id());
        }
    }
    std::thread([] {
        GAM_TRACE_SCOPE("worker");
    }).join();
    collector.disable();

    const auto events = parseChromeTrace(collector.exportChromeJson());
    ASSERT_EQ(events.size(), 3u);

    const ParsedEvent *outer = nullptr, *inner = nullptr,
                      *worker = nullptr;
    for (const auto &e : events) {
        if (e.name == "outer")
            outer = &e;
        else if (e.name == "inner")
            inner = &e;
        else if (e.name == "worker")
            worker = &e;
    }
    ASSERT_TRUE(outer && inner && worker);

    // The inner span nests inside the outer one on the same thread
    // (ts/dur are microseconds rounded to 3 decimals, so allow the
    // rounding step).
    EXPECT_EQ(inner->tid, outer->tid);
    EXPECT_NE(worker->tid, outer->tid);
    const double eps = 0.002;
    EXPECT_LE(outer->ts, inner->ts + eps);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + eps);
    // Distinct ids, allocated in construction order.
    EXPECT_LT(outer->id, inner->id);

    collector.clear();
    EXPECT_EQ(collector.retainedEvents(), 0u);
}

TEST(Trace, SpansAreInertWhileDisabled)
{
    TraceCollector &collector = TraceCollector::instance();
    collector.clear();
    ASSERT_FALSE(collector.enabled());
    {
        TraceSpan span("ghost");
        EXPECT_EQ(span.id(), 0u);
    }
    EXPECT_EQ(collector.retainedEvents(), 0u);
}

TEST(Trace, RingOverflowDropsOldestAndCounts)
{
    TraceCollector &collector = TraceCollector::instance();
    collector.clear();
    collector.enable();
    constexpr uint64_t Capacity = 1 << 14;
    constexpr uint64_t Written = Capacity + 100;
    // A fresh thread gets its own ring; overflow only drops there.
    std::thread([] {
        for (uint64_t i = 0; i < Written; ++i)
            GAM_TRACE_SCOPE("spin");
    }).join();
    collector.disable();

    EXPECT_EQ(collector.droppedEvents(), Written - Capacity);
    EXPECT_EQ(collector.retainedEvents(), Capacity);
    collector.clear();
    EXPECT_EQ(collector.droppedEvents(), 0u);
}

// ----------------------------------------------------------- log sink

TEST(LogSink, CapturesRecordsWithLevelsAndMonotonicTimestamps)
{
    std::vector<LogRecord> records;
    LogSink previous = setLogSink([&records](const LogRecord &r) {
        records.push_back(r);
    });

    warn("watch out %d", 7);
    inform("status: %s", "ok");
    logMessage(LogLevel::Debug, "very chatty");

    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].level, LogLevel::Warn);
    EXPECT_EQ(records[0].message, "watch out 7");
    EXPECT_EQ(records[1].level, LogLevel::Info);
    EXPECT_EQ(records[1].message, "status: ok");
    EXPECT_EQ(records[2].level, LogLevel::Debug);
    EXPECT_LE(records[0].monotonicNs, records[1].monotonicNs);
    EXPECT_LE(records[1].monotonicNs, records[2].monotonicNs);

    // Below-minimum levels are dropped before the sink.
    setLogMinLevel(LogLevel::Warn);
    inform("suppressed");
    warn("still heard");
    EXPECT_EQ(records.size(), 4u);
    EXPECT_EQ(records.back().message, "still heard");

    setLogMinLevel(LogLevel::Debug);
    LogSink mine = setLogSink(std::move(previous));
    EXPECT_TRUE(mine != nullptr);
    EXPECT_EQ(logMinLevel(), LogLevel::Debug);

    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
}

// ------------------------------------------- the decide() instrument

TEST(DecideMetrics, RequestsEqualTerminalsAndSpansStamp)
{
    // Every decide() ends in exactly one of: cache hit, store hit,
    // prescreen verdict, or an engine run.  The registry must agree.
    const MetricSnapshot before = metrics().snapshot();

    harness::DecisionCache cache(1 << 10);
    const char *names[] = {"mp", "dekker", "lb", "iriw"};
    for (const char *name : names) {
        const litmus::LitmusTest &test = litmus::testByName(name);
        for (int round = 0; round < 2; ++round) {
            harness::Query q;
            q.test = &test;
            q.model = model::ModelKind::GAM;
            q.engine = harness::EngineSelect::Axiomatic;
            const harness::Decision d = harness::decide(q, &cache);
            // Tracing is disabled here, so no span id is stamped.
            EXPECT_EQ(d.traceSpanId, 0u);
        }
    }

    const MetricSnapshot d = metrics().snapshot().delta(before);
    EXPECT_GT(d.counter("decide.requests"), 0u);
    EXPECT_GT(d.counter("decide.cache.hit"), 0u);
    EXPECT_EQ(d.counter("decide.requests"),
              d.counter("decide.cache.hit")
                  + d.counter("decide.store.hit")
                  + d.counter("decide.prescreen.value_cover")
                  + d.counter("decide.prescreen.sc_delegate")
                  + d.counter("decide.engine.axiomatic")
                  + d.counter("decide.engine.operational")
                  + d.counter("decide.engine.cat"));
    EXPECT_EQ(d.histograms.at("decide.wall_us").count,
              d.counter("decide.requests"));

    // With tracing enabled every decision carries its span id.
    TraceCollector::instance().clear();
    TraceCollector::instance().enable();
    harness::Query q;
    const litmus::LitmusTest &test = litmus::testByName("mp");
    q.test = &test;
    q.model = model::ModelKind::GAM;
    q.engine = harness::EngineSelect::Axiomatic;
    const harness::Decision traced = harness::decide(q, nullptr);
    TraceCollector::instance().disable();
    EXPECT_GT(traced.traceSpanId, 0u);

    // The span actually landed in the exported trace.
    bool found = false;
    for (const auto &e :
         parseChromeTrace(TraceCollector::instance().exportChromeJson())) {
        if (e.name == "decide" && e.id == traced.traceSpanId)
            found = true;
    }
    EXPECT_TRUE(found);
    TraceCollector::instance().clear();
}

} // namespace
} // namespace gam::obs
