/**
 * Differential validation of the cat engine: outcome-set and verdict
 * parity with the hand-coded axiomatic checker on every built-in
 * litmus test, agreement with the operational explorer on generated
 * tests, decision-API integration (dispatch, caching, model-hash
 * keys), and the pinned per-model verdict corpus.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

#include "cat/engine.hh"
#include "cat/parser.hh"
#include "harness/decision.hh"
#include "harness/fuzz.hh"
#include "harness/litmus_runner.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"

namespace gam::harness
{
namespace
{

using model::Engine;
using model::ModelKind;

constexpr ModelKind catModels[] = {ModelKind::SC, ModelKind::TSO,
                                   ModelKind::GAM0, ModelKind::GAM};

Query
queryFor(const litmus::LitmusTest &test, ModelKind model,
         EngineSelect engine)
{
    Query q;
    q.test = &test;
    q.model = model;
    q.engine = engine;
    return q;
}

TEST(CatParity, OutcomeSetsEqualTheHandCodedCheckerOnAllBuiltins)
{
    // The acceptance bar: not just the verdicts -- the *full outcome
    // sets* of the model files must equal the hand-coded axioms on
    // every built-in test.
    DecisionCache cache;
    for (const auto &test : litmus::allTests()) {
        for (ModelKind model : catModels) {
            const Decision ax = decide(
                queryFor(test, model, EngineSelect::Axiomatic), &cache);
            const Decision ct = decide(
                queryFor(test, model, EngineSelect::Cat), &cache);
            EXPECT_EQ(ct.outcomes, ax.outcomes)
                << test.name << " " << model::modelName(model);
            EXPECT_EQ(ct.allowed, ax.allowed)
                << test.name << " " << model::modelName(model);
            EXPECT_EQ(ct.engine, Engine::Cat);
            EXPECT_TRUE(ct.complete);
            // Shared pruned enumeration: the model files express the
            // same constraints as the hand-coded axioms, so the two
            // engines' partial-candidate checks cut identical
            // subtrees and materialize the same complete candidates.
            EXPECT_EQ(ct.statesVisited, ax.statesVisited)
                << test.name << " " << model::modelName(model);
            EXPECT_EQ(ct.enumStats.subtreesSkipped,
                      ax.enumStats.subtreesSkipped)
                << test.name << " " << model::modelName(model);
        }
    }
}

TEST(CatParity, CatVersusOperationalFuzzFindsNoDivergence)
{
    FuzzOptions options;
    options.tests = 60;
    options.seed = 7;
    options.spec = Engine::Cat;
    const FuzzReport report = fuzzDifferential(options);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_EQ(report.spec, Engine::Cat);
    // ARM has no cat model: 4 checks per test, not 5.
    EXPECT_EQ(report.checksRun, 60u * 4u);
    EXPECT_NE(report.toString().find("cat vs operational"),
              std::string::npos);
}

TEST(CatParity, MatrixGrowsCatRowsAndTheyMatchThePaper)
{
    const std::vector<litmus::LitmusTest> tests{
        litmus::testByName("mp"), litmus::testByName("lb")};
    const std::vector<ModelKind> models{ModelKind::SC, ModelKind::GAM};
    DecisionCache cache;
    MatrixOptions options;
    options.cache = &cache;
    const auto verdicts = runLitmusMatrix(tests, models, options);
    // Three engines support SC and GAM: 2 tests x 2 models x 3 rows.
    ASSERT_EQ(verdicts.size(), 12u);
    size_t cat_rows = 0;
    for (const auto &v : verdicts) {
        if (v.engine == Engine::Cat)
            ++cat_rows;
        EXPECT_TRUE(v.matchesPaper())
            << v.test << " " << model::modelName(v.model) << " "
            << model::engineName(v.engine);
    }
    EXPECT_EQ(cat_rows, 4u);

    MatrixOptions cat_only;
    cat_only.engine = EngineSelect::Cat;
    cat_only.cache = &cache;
    EXPECT_EQ(runLitmusMatrix(tests, models, cat_only).size(), 4u);
    // Models without a cat file are skipped, not asserted on.
    EXPECT_EQ(runLitmusMatrix(tests, {ModelKind::ARM}, cat_only).size(),
              0u);
}

TEST(CatParity, DecisionCacheKeysIncludeTheModelSourceHash)
{
    const auto &test = litmus::testByName("mp");
    const Query builtin = queryFor(test, ModelKind::GAM,
                                   EngineSelect::Cat);
    const uint64_t k = queryKey(builtin, Engine::Cat);
    EXPECT_NE(k, queryKey(builtin, Engine::Axiomatic));

    // A custom model otherwise identical to the builtin: one comment
    // changes the source hash, so it can never share a cache entry.
    const cat::CatModel &gam = cat::builtinCatModel(ModelKind::GAM);
    auto edited = cat::parseCat(gam.source + "\n// edited\n", "GAM");
    ASSERT_TRUE(edited.ok());
    Query custom = builtin;
    custom.catModel = &*edited.model;
    EXPECT_NE(queryKey(custom, Engine::Cat), k);

    // Same source -> same key (the pointer identity is irrelevant).
    auto same = cat::parseCat(gam.source, "GAM");
    ASSERT_TRUE(same.ok());
    Query alias = builtin;
    alias.catModel = &*same.model;
    EXPECT_EQ(queryKey(alias, Engine::Cat), k);

    // Warm decisions are identical to cold ones.
    DecisionCache cache;
    const Decision cold = decide(builtin, &cache);
    const Decision warm = decide(builtin, &cache);
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(warm.outcomes, cold.outcomes);
    EXPECT_EQ(warm.allowed, cold.allowed);
}

TEST(CatParity, CustomModelsDecideThroughTheQueryApi)
{
    // A custom model under a kind the cat engine has no builtin for:
    // allowed because the query brings its own axioms.
    auto loose = cat::parseCat("\"everything-goes\"\n"
                               "irreflexive fr; po as LoadValue\n"
                               "irreflexive fr; co as Atomicity\n");
    ASSERT_TRUE(loose.ok());
    const auto &test = litmus::testByName("mp");
    Query q = queryFor(test, ModelKind::ARM, EngineSelect::Cat);
    q.catModel = &*loose.model;
    const Decision d = decide(q, nullptr);
    // With no InstOrder axiom at all, mp's non-SC outcome is allowed.
    EXPECT_TRUE(d.allowed);

    // The same model through the CatEngine directly agrees.
    cat::CatEngine engine(test, *loose.model);
    EXPECT_TRUE(engine.isAllowed());
    EXPECT_EQ(engine.enumerate(), d.outcomes);
}

TEST(CatParity, AxiomBeforeLetIsSafeAcrossEpochReuse)
{
    // Statement order must not matter for incremental evaluation: an
    // axiom failing before a later co-independent `let` once left that
    // let's slot stale (or sized for another epoch's event count) for
    // the next candidate.  dekker's branches make executed event
    // counts differ across rf epochs, which turned that staleness
    // into a universe-mismatch abort.
    auto odd = cat::parseCat(
        "\"odd-order\"\n"
        "acyclic co | (rf \\ po) | fr as CoherenceFirst\n"
        "let p = po & loc\n"
        "irreflexive p; fr as PerLoc\n");
    ASSERT_TRUE(odd.ok());
    auto canonical = cat::parseCat(
        "\"let-first\"\n"
        "let p = po & loc\n"
        "acyclic co | (rf \\ po) | fr as CoherenceFirst\n"
        "irreflexive p; fr as PerLoc\n");
    ASSERT_TRUE(canonical.ok());

    for (const char *name : {"dekker", "corw1", "mp_ctrl"}) {
        const auto &test = litmus::testByName(name);
        Query q = queryFor(test, ModelKind::GAM, EngineSelect::Cat);
        q.catModel = &*odd.model;
        const Decision d_odd = decide(q, nullptr);
        q.catModel = &*canonical.model;
        const Decision d_canonical = decide(q, nullptr);
        EXPECT_EQ(d_odd.outcomes, d_canonical.outcomes) << name;
        EXPECT_EQ(d_odd.allowed, d_canonical.allowed) << name;
    }
}

TEST(CatParity, PinnedVerdictCorpusIsCompleteAndCurrent)
{
    // tests/corpus/cat_verdicts.txt pins "test model verdict" lines
    // for every built-in test under every cat model.  Regenerate by
    // pasting the computed text this test prints on mismatch.
    std::ifstream in(std::string(GAM_CORPUS_DIR) + "/cat_verdicts.txt");
    ASSERT_TRUE(in.good()) << "missing tests/corpus/cat_verdicts.txt";
    std::map<std::pair<std::string, std::string>, std::string> pinned;
    std::string test_name, model_name, verdict;
    while (in >> test_name >> model_name >> verdict)
        pinned[{test_name, model_name}] = verdict;

    DecisionCache cache;
    std::string computed;
    size_t mismatches = 0;
    for (const auto &test : litmus::allTests()) {
        for (ModelKind model : catModels) {
            const Decision d =
                decide(queryFor(test, model, EngineSelect::Cat),
                       &cache);
            const std::string got = d.allowed ? "allowed" : "forbidden";
            computed += test.name + " " + model::modelName(model) + " "
                + got + "\n";
            auto it = pinned.find({test.name,
                                   model::modelName(model)});
            if (it == pinned.end() || it->second != got)
                ++mismatches;
        }
    }
    const size_t expected =
        litmus::allTests().size() * std::size(catModels);
    EXPECT_EQ(pinned.size(), expected)
        << "corpus must cover every (test, model) pair";
    EXPECT_EQ(mismatches, 0u)
        << "verdicts drifted; expected corpus content:\n" << computed;
}

} // namespace
} // namespace gam::harness
