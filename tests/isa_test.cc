/** Unit tests for the mini-ISA: register sets, builder, assembler. */

#include <gtest/gtest.h>

#include <algorithm>

#include "isa/assembler.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"
#include "isa/semantics.hh"

namespace gam::isa
{
namespace
{

bool
contains(const std::vector<Reg> &set, Reg r)
{
    return std::find(set.begin(), set.end(), r) != set.end();
}

TEST(RegNames, IntAndFp)
{
    EXPECT_EQ(regName(R(3)), "r3");
    EXPECT_EQ(regName(F(2)), "f2");
    EXPECT_FALSE(isFpReg(R(31)));
    EXPECT_TRUE(isFpReg(F(0)));
}

TEST(Fences, PrePostTypes)
{
    EXPECT_EQ(fencePre(FenceKind::LL), MemType::Load);
    EXPECT_EQ(fencePost(FenceKind::LL), MemType::Load);
    EXPECT_EQ(fencePre(FenceKind::LS), MemType::Load);
    EXPECT_EQ(fencePost(FenceKind::LS), MemType::Store);
    EXPECT_EQ(fencePre(FenceKind::SL), MemType::Store);
    EXPECT_EQ(fencePost(FenceKind::SL), MemType::Load);
    EXPECT_EQ(fencePre(FenceKind::SS), MemType::Store);
    EXPECT_EQ(fencePost(FenceKind::SS), MemType::Store);
}

TEST(RegisterSets, AluThreeReg)
{
    Instruction i = makeAlu(Opcode::ADD, R(1), R(2), R(3));
    EXPECT_TRUE(contains(i.readSet(), R(2)));
    EXPECT_TRUE(contains(i.readSet(), R(3)));
    EXPECT_EQ(i.readSet().size(), 2u);
    EXPECT_TRUE(contains(i.writeSet(), R(1)));
    EXPECT_TRUE(i.addrReadSet().empty());
}

TEST(RegisterSets, ZeroRegisterExcluded)
{
    // Definitions 1-2 ignore the hard-wired zero register.
    Instruction i = makeAlu(Opcode::ADD, R(0), R(0), R(3));
    EXPECT_EQ(i.readSet().size(), 1u);
    EXPECT_TRUE(i.writeSet().empty());
}

TEST(RegisterSets, DuplicateSourceCountedOnce)
{
    Instruction i = makeAlu(Opcode::ADD, R(1), R(2), R(2));
    EXPECT_EQ(i.readSet().size(), 1u);
}

TEST(RegisterSets, LoadAddressSet)
{
    // ARS(load) = {base}; WS = {dst}.
    Instruction i = makeLoad(R(4), R(5), 16);
    EXPECT_TRUE(contains(i.addrReadSet(), R(5)));
    EXPECT_TRUE(contains(i.readSet(), R(5)));
    EXPECT_TRUE(contains(i.writeSet(), R(4)));
    EXPECT_TRUE(i.dataReadSet().empty());
}

TEST(RegisterSets, StoreSets)
{
    // RS(store) = ARS + data; WS empty.
    Instruction i = makeStore(R(5), R(6));
    EXPECT_TRUE(contains(i.addrReadSet(), R(5)));
    EXPECT_TRUE(contains(i.dataReadSet(), R(6)));
    EXPECT_TRUE(contains(i.readSet(), R(5)));
    EXPECT_TRUE(contains(i.readSet(), R(6)));
    EXPECT_TRUE(i.writeSet().empty());
}

TEST(RegisterSets, BranchReadsNoWrites)
{
    Instruction i = makeBranch(Opcode::BEQ, R(1), R(2), 0);
    EXPECT_EQ(i.readSet().size(), 2u);
    EXPECT_TRUE(i.writeSet().empty());
}

TEST(Classification, Basic)
{
    EXPECT_TRUE(makeLoad(R(1), R(2)).isLoad());
    EXPECT_TRUE(makeStore(R(1), R(2)).isStore());
    EXPECT_TRUE(makeLoad(R(1), R(2)).isMem());
    EXPECT_TRUE(makeBranch(Opcode::BNE, R(1), R(2), 0).isBranch());
    EXPECT_TRUE(makeJmp(0).isBranch());
    EXPECT_FALSE(makeJmp(0).isCondBranch());
    EXPECT_TRUE(makeFence(FenceKind::SS).isFence());
    EXPECT_TRUE(makeAlu(Opcode::ADD, R(1), R(2), R(3)).isRegToReg());
    EXPECT_FALSE(makeNop().isRegToReg());
    EXPECT_TRUE(makeLoad(R(1), R(2)).isMemType(MemType::Load));
    EXPECT_FALSE(makeLoad(R(1), R(2)).isMemType(MemType::Store));
    EXPECT_TRUE(makeStore(R(1), R(2)).isMemType(MemType::Store));
    EXPECT_FALSE(makeStore(R(1), R(2)).isMemType(MemType::Load));
}

TEST(Semantics, IntegerOps)
{
    auto ev = [](Opcode op, Value a, Value b) {
        return evalRegToReg(makeAlu(op, R(1), R(2), R(3)), a, b);
    };
    EXPECT_EQ(ev(Opcode::ADD, 2, 3), 5);
    EXPECT_EQ(ev(Opcode::SUB, 2, 3), -1);
    EXPECT_EQ(ev(Opcode::MUL, 7, 6), 42);
    EXPECT_EQ(ev(Opcode::DIV, 7, 2), 3);
    EXPECT_EQ(ev(Opcode::DIV, 7, 0), 0);   // defined: no UB
    EXPECT_EQ(ev(Opcode::DIV, INT64_MIN, -1), INT64_MIN);
    EXPECT_EQ(ev(Opcode::REM, 7, 0), 0);
    EXPECT_EQ(ev(Opcode::AND, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(ev(Opcode::XOR, 0b1100, 0b1010), 0b0110);
    EXPECT_EQ(ev(Opcode::SLT, -1, 0), 1);
    EXPECT_EQ(ev(Opcode::SLTU, -1, 0), 0); // unsigned compare
}

TEST(Semantics, Immediates)
{
    Instruction addi = makeAluImm(Opcode::ADDI, R(1), R(2), -7);
    EXPECT_EQ(evalRegToReg(addi, 10, 0), 3);
    Instruction slli = makeAluImm(Opcode::SLLI, R(1), R(2), 4);
    EXPECT_EQ(evalRegToReg(slli, 3, 0), 48);
    Instruction li = makeLi(R(1), 99);
    EXPECT_EQ(evalRegToReg(li, 0, 0), 99);
}

TEST(Semantics, FloatingPoint)
{
    auto f = [](double d) { return std::bit_cast<Value>(d); };
    Instruction fadd = makeAlu(Opcode::FADD, F(1), F(2), F(3));
    EXPECT_EQ(evalRegToReg(fadd, f(1.5), f(2.25)), f(3.75));
    Instruction cvt = makeAluImm(Opcode::FCVT_F2I, R(1), F(1), 0);
    EXPECT_EQ(evalRegToReg(cvt, f(41.9), 0), 41);
}

TEST(Semantics, Branches)
{
    auto taken = [](Opcode op, Value a, Value b) {
        return evalBranchTaken(makeBranch(op, R(1), R(2), 0), a, b);
    };
    EXPECT_TRUE(taken(Opcode::BEQ, 4, 4));
    EXPECT_FALSE(taken(Opcode::BEQ, 4, 5));
    EXPECT_TRUE(taken(Opcode::BNE, 4, 5));
    EXPECT_TRUE(taken(Opcode::BLT, -1, 0));
    EXPECT_TRUE(taken(Opcode::BGE, 0, 0));
    EXPECT_TRUE(evalBranchTaken(makeJmp(3), 0, 0));
}

TEST(Semantics, EffectiveAddr)
{
    EXPECT_EQ(effectiveAddr(makeLoad(R(1), R(2), 16), 0x100), 0x110);
    EXPECT_EQ(effectiveAddr(makeStore(R(2), R(3), -8), 0x100), 0xf8);
}

TEST(Builder, LabelsResolve)
{
    Program p = ProgramBuilder()
        .li(R(1), 1)
        .beq(R(1), R(0), "end")
        .addi(R(1), R(1), 1)
        .label("end")
        .halt()
        .build();
    EXPECT_EQ(p.size(), 4u);
    EXPECT_EQ(p[1].imm, 3);
}

TEST(Builder, FenceExpansion)
{
    Program p = ProgramBuilder().fenceAcquire().fenceRelease()
        .fenceFull().build();
    ASSERT_EQ(p.size(), 8u);
    EXPECT_EQ(p[0].fence, FenceKind::LL);
    EXPECT_EQ(p[1].fence, FenceKind::LS);
    EXPECT_EQ(p[2].fence, FenceKind::LS);
    EXPECT_EQ(p[3].fence, FenceKind::SS);
    EXPECT_EQ(p[4].fence, FenceKind::LL);
    EXPECT_EQ(p[7].fence, FenceKind::SS);
}

TEST(Builder, MovIsAddiZero)
{
    Program p = ProgramBuilder().mov(R(1), R(2)).build();
    EXPECT_EQ(p[0].op, Opcode::ADDI);
    EXPECT_EQ(p[0].imm, 0);
}

TEST(Disassembly, RoundTripReadable)
{
    EXPECT_EQ(makeLoad(R(1), R(2), 8).toString(), "ld r1, [r2+8]");
    EXPECT_EQ(makeStore(R(2), R(3)).toString(), "st [r2], r3");
    EXPECT_EQ(makeFence(FenceKind::LS).toString(), "FenceLS");
    EXPECT_EQ(makeAlu(Opcode::ADD, R(1), R(2), R(3)).toString(),
              "add r1, r2, r3");
}

TEST(Assembler, BasicProgram)
{
    Program p = assemble(R"(
        # a tiny program
        li   r1, 5
        addi r2, r1, 3
        ld   r3, [r2+16]
        st   [r2], r3        ; store back
    loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    ASSERT_EQ(p.size(), 7u);
    EXPECT_EQ(p[0].op, Opcode::LI);
    EXPECT_EQ(p[2].op, Opcode::LD);
    EXPECT_EQ(p[2].imm, 16);
    EXPECT_EQ(p[5].op, Opcode::BNE);
    EXPECT_EQ(p[5].imm, 4);
}

TEST(Assembler, FencesAndPseudo)
{
    Program p = assemble("fence.ss\nfence.acq\nfence.full\n");
    ASSERT_EQ(p.size(), 7u); // 1 + 2 + 4
    EXPECT_EQ(p[0].fence, FenceKind::SS);
    EXPECT_EQ(p[1].fence, FenceKind::LL);
    EXPECT_EQ(p[2].fence, FenceKind::LS);
}

TEST(Assembler, FpRegisters)
{
    Program p = assemble("fadd f1, f2, f3\nfcvt.i2f f0, r4\n");
    EXPECT_EQ(p[0].dst, F(1));
    EXPECT_EQ(p[1].src1, R(4));
}

TEST(Assembler, HexImmediates)
{
    Program p = assemble("li r1, 0x10\nli r2, -0x8\n");
    EXPECT_EQ(p[0].imm, 16);
    EXPECT_EQ(p[1].imm, -8);
}

TEST(ProgramValidate, BranchTargetInRange)
{
    Program p = ProgramBuilder().jmp("end").label("end").build();
    EXPECT_EQ(p[0].imm, 1); // branching to program end is legal
}

TEST(MemImageTest, DefaultZeroAndStore)
{
    MemImage m;
    EXPECT_EQ(m.load(0x1000), 0);
    m.store(0x1000, 42);
    EXPECT_EQ(m.load(0x1000), 42);
    EXPECT_EQ(m.footprint(), 1u);
}

} // namespace
} // namespace gam::isa
