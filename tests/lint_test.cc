/**
 * @file
 * Golden tests for the cat-model linter (analysis/lint.hh).
 *
 * Each fixture under tests/corpus/lint/ is a deliberately defective
 * model exercising one lint rule; the expectations pin the rule ID,
 * the 1-based line:col, and a distinctive message fragment, so a
 * regression in either the analysis or the position plumbing fails
 * loudly.  The shipped models under models/ must lint clean -- the
 * same gate CI runs via `gam-litmus model lint`.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lint.hh"
#include "cat/parser.hh"

namespace
{

using gam::analysis::LintDiagnostic;
using gam::analysis::LintSeverity;

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<LintDiagnostic>
lintFixture(const std::string &stem)
{
    const std::filesystem::path path =
        std::filesystem::path(GAM_LINT_DIR) / (stem + ".cat");
    const auto parsed = gam::cat::parseCat(readFile(path), stem);
    EXPECT_TRUE(parsed.ok())
        << path << ": " << parsed.error.toString();
    if (!parsed.ok())
        return {};
    return gam::analysis::lint(*parsed.model);
}

/** One pinned expectation: rule ID, position, message fragment. */
struct Golden
{
    const char *rule;
    int line;
    int col;
    const char *fragment;
};

void
expectDiags(const std::string &stem, const std::vector<Golden> &want)
{
    const auto got = lintFixture(stem);
    ASSERT_EQ(got.size(), want.size()) << stem;
    for (size_t i = 0; i < want.size(); ++i) {
        SCOPED_TRACE(stem + " diagnostic " + std::to_string(i));
        EXPECT_STREQ(got[i].rule, want[i].rule);
        EXPECT_EQ(got[i].line, want[i].line);
        EXPECT_EQ(got[i].col, want[i].col);
        EXPECT_NE(got[i].message.find(want[i].fragment),
                  std::string::npos)
            << "message was: " << got[i].message;
        EXPECT_EQ(got[i].severity, LintSeverity::Warning);
    }
}

TEST(Lint, UnusedDefinition)
{
    expectDiags("unused",
                {{"L001", 3, 5, "'dead' is never used by an axiom"}});
}

TEST(Lint, ShadowedNames)
{
    // The shadowed first binding is also dead: its uses all resolve to
    // the later definition of the same name.
    expectDiags("shadow",
                {{"L001", 3, 5, "'ord' is never used"},
                 {"L002", 4, 5, "shadows an earlier definition"},
                 {"L002", 5, 5, "shadows the builtin of the same name"}});
}

TEST(Lint, EmptyRelations)
{
    // The binding [F] & [M] is empty (fences are not memory events);
    // so is the axiom subexpression fr; [F] (fr targets stores).
    expectDiags("empty",
                {{"L003", 3, 5, "'nil' is empty"},
                 {"L003", 6, 29, "subexpression is empty"}});
}

TEST(Lint, VacuousAxioms)
{
    expectDiags("vacuous",
                {{"L004", 6, 16, "irreflexive by construction"},
                 {"L004", 7, 10, "empty in every candidate execution"}});
}

TEST(Lint, RedundantAxiom)
{
    // acyclic(ppo | co) follows from acyclicity of the superset
    // ppo | co | (rf \ po) | fr checked by the first axiom.
    expectDiags("redundant",
                {{"L005", 7, 13, "'SubOrder' is implied by axiom "
                                 "'Order'"}});
}

TEST(Lint, NonProductiveRecursion)
{
    expectDiags("rec",
                {{"L006", 3, 9, "never references its own names"},
                 {"L006", 4, 9, "least fixpoint"}});
}

TEST(Lint, InvariantRecomputation)
{
    // `slow`'s body recomputes the co/fr-independent [M]; po; [M] for
    // every coherence candidate (hoistable); the axiom spells out
    // `addr | data` where the definition `dep` already names it.
    expectDiags("invariant",
                {{"L007", 10, 20, "hoist it into its own 'let'"},
                 {"L007", 12, 29, "duplicates definition 'dep'"}});
}

TEST(Lint, DiagnosticToString)
{
    LintDiagnostic d{"L001", "unused-definition",
                     LintSeverity::Warning, 3, 5, "definition 'dead' "
                     "is never used by an axiom"};
    EXPECT_EQ(d.toString(),
              "3:5: warning: definition 'dead' is never used by an "
              "axiom [L001 unused-definition]");
}

// The gate CI enforces: every shipped model must be diagnostic-free.
TEST(Lint, ShippedModelsAreClean)
{
    size_t models = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(GAM_MODELS_DIR)) {
        if (entry.path().extension() != ".cat")
            continue;
        ++models;
        const std::string stem = entry.path().stem().string();
        const auto parsed =
            gam::cat::parseCat(readFile(entry.path()), stem);
        ASSERT_TRUE(parsed.ok())
            << entry.path() << ": " << parsed.error.toString();
        const auto diags = gam::analysis::lint(*parsed.model);
        for (const auto &d : diags)
            ADD_FAILURE() << stem << ": " << d.toString();
    }
    EXPECT_GE(models, 4u); // sc, tso, gam0, gam at minimum
}

} // namespace
