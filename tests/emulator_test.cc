/** Unit tests for the functional emulator. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/emulator.hh"

namespace gam::isa
{
namespace
{

TEST(EmulatorTest, StraightLineArithmetic)
{
    Program p = assemble(R"(
        li   r1, 6
        li   r2, 7
        mul  r3, r1, r2
        halt
    )");
    Emulator emu(p);
    emu.run();
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(emu.reg(R(3)), 42);
}

TEST(EmulatorTest, LoadsAndStores)
{
    Program p = assemble(R"(
        li r1, 0x1000
        li r2, 11
        st [r1], r2
        ld r3, [r1]
        st [r1+8], r3
        halt
    )");
    Emulator emu(p);
    emu.run();
    EXPECT_EQ(emu.reg(R(3)), 11);
    EXPECT_EQ(emu.mem().load(0x1008), 11);
}

TEST(EmulatorTest, InitialMemoryVisible)
{
    MemImage mem;
    mem.store(0x2000, 99);
    Program p = assemble("li r1, 0x2000\nld r2, [r1]\nhalt\n");
    Emulator emu(p, mem);
    emu.run();
    EXPECT_EQ(emu.reg(R(2)), 99);
}

TEST(EmulatorTest, LoopSumsCorrectly)
{
    Program p = assemble(R"(
        li r1, 10
        li r2, 0
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    Emulator emu(p);
    emu.run();
    EXPECT_EQ(emu.reg(R(2)), 55);
}

TEST(EmulatorTest, BranchDirections)
{
    Program p = assemble(R"(
        li  r1, 5
        blt r1, r0, neg
        li  r2, 1
        jmp end
    neg:
        li  r2, 2
    end:
        halt
    )");
    Emulator emu(p);
    emu.run();
    EXPECT_EQ(emu.reg(R(2)), 1);
}

TEST(EmulatorTest, ZeroRegisterStaysZero)
{
    Program p = assemble("li r0, 7\nadd r1, r0, r0\nhalt\n");
    Emulator emu(p);
    emu.run();
    EXPECT_EQ(emu.reg(R(0)), 0);
    EXPECT_EQ(emu.reg(R(1)), 0);
}

TEST(EmulatorTest, MaxStepsBudget)
{
    // An infinite loop executes exactly the budget.
    Program p = assemble("loop:\njmp loop\n");
    Emulator emu(p);
    uint64_t steps = emu.run(100);
    EXPECT_EQ(steps, 100u);
    EXPECT_FALSE(emu.halted());
}

TEST(EmulatorTest, FenceIsArchitecturalNop)
{
    Program p = assemble("li r1, 3\nfence.full\naddi r1, r1, 1\nhalt\n");
    Emulator emu(p);
    emu.run();
    EXPECT_EQ(emu.reg(R(1)), 4);
}

TEST(EmulatorTest, RunsOffEndHalts)
{
    Program p = assemble("li r1, 1\n");
    Emulator emu(p);
    emu.run();
    EXPECT_TRUE(emu.halted());
    EXPECT_EQ(emu.reg(R(1)), 1);
}

TEST(EmulatorTest, FpPipeline)
{
    Program p = assemble(R"(
        li r1, 0x4010000000000000   # 4.0
        fmov f1, r1
        fsqrt f2, f1
        fadd f3, f2, f2
        fcvt.f2i r2, f3
        halt
    )");
    Emulator emu(p);
    emu.run();
    EXPECT_EQ(emu.reg(R(2)), 4); // 2*sqrt(4)
}

TEST(EmulatorTest, InstRetiredCounts)
{
    Program p = assemble("li r1, 1\nli r2, 2\nhalt\n");
    Emulator emu(p);
    emu.run();
    EXPECT_EQ(emu.instRetired(), 3u);
}

TEST(EmulatorTest, ArchStateEquality)
{
    Program p = assemble("li r1, 1\nhalt\n");
    Emulator a(p), b(p);
    a.run();
    b.run();
    EXPECT_TRUE(a.archState() == b.archState());
}

} // namespace
} // namespace gam::isa
