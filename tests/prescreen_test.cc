/**
 * @file
 * Differential soundness tests for the static litmus pre-screen
 * (analysis/prescreen.hh) and its decide() integration.
 *
 * The pre-screen may only ever short-circuit a decision to the answer
 * the real engine would have produced.  The tests here enforce that
 * exhaustively on the built-in corpus (every test x every model x both
 * enumeration engines) and statistically on a fixed-seed generator
 * sweep, with fresh caches on both sides so no memoized result can
 * paper over a divergence.  They also pin that the pre-screen actually
 * fires on the built-in corpus -- a pre-screen that never triggers
 * would pass every soundness check vacuously.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "analysis/prescreen.hh"
#include "harness/decision.hh"
#include "harness/litmus_runner.hh"
#include "litmus/generator.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"

namespace
{

using gam::analysis::prescreen;
using gam::analysis::PrescreenVerdict;
using gam::harness::Decision;
using gam::harness::DecisionCache;
using gam::harness::EngineSelect;
using gam::harness::PrescreenKind;
using gam::harness::Query;
using gam::model::Engine;
using gam::model::ModelKind;

const std::vector<ModelKind> kModels = {
    ModelKind::SC, ModelKind::TSO, ModelKind::GAM0, ModelKind::GAM};

/**
 * Decide @p test with the pre-screen on and off (separate fresh
 * caches) and fail on any divergence.  Returns the on-side decision
 * so callers can aggregate hit counts.
 */
Decision
checkOne(const gam::litmus::LitmusTest &test, ModelKind model,
         EngineSelect engine, DecisionCache *on_cache,
         DecisionCache *off_cache)
{
    Query query;
    query.test = &test;
    query.model = model;
    query.engine = engine;

    query.options.prescreen = true;
    const Decision on = gam::harness::decide(query, on_cache);
    query.options.prescreen = false;
    const Decision off = gam::harness::decide(query, off_cache);

    EXPECT_EQ(on.allowed, off.allowed)
        << test.name << " under " << gam::model::modelName(model)
        << " (" << gam::model::engineName(off.engine) << "): "
        << "prescreen=" << prescreenKindName(on.prescreened);
    EXPECT_TRUE(on.complete);
    EXPECT_TRUE(off.complete);
    // An SC-delegated decision claims the full outcome set; hold it to
    // that.  (ValueCover decisions carry no outcomes by construction.)
    if (on.prescreened == PrescreenKind::ScDelegate) {
        EXPECT_EQ(on.outcomes, off.outcomes) << test.name;
    }
    return on;
}

TEST(Prescreen, SoundOnBuiltinCorpusBothEngines)
{
    size_t hits = 0;
    size_t decisions = 0;
    for (const EngineSelect engine :
         {EngineSelect::Axiomatic, EngineSelect::Cat}) {
        DecisionCache on_cache;
        DecisionCache off_cache;
        for (const auto &test : gam::litmus::allTests()) {
            for (ModelKind model : kModels) {
                const Engine resolved =
                    engine == EngineSelect::Axiomatic ? Engine::Axiomatic
                                                      : Engine::Cat;
                if (!gam::model::supportsEngine(model, resolved))
                    continue;
                const Decision d = checkOne(test, model, engine,
                                            &on_cache, &off_cache);
                ++decisions;
                hits += d.prescreened != PrescreenKind::None;
            }
        }
    }
    // The pre-screen must do real work on the shipped corpus; a zero
    // hit count means the soundness sweep proved nothing.
    EXPECT_GT(hits, 0u);
    std::printf("[ prescreen ] builtin corpus: %zu/%zu decisions "
                "short-circuited\n", hits, decisions);
}

TEST(Prescreen, SoundOnGeneratedTests)
{
    constexpr uint64_t kSeed = 20260808;
    constexpr uint64_t kTests = 500;
    DecisionCache on_cache;
    DecisionCache off_cache;
    size_t hits = 0;
    size_t decisions = 0;
    for (uint64_t i = 0; i < kTests; ++i) {
        const gam::litmus::LitmusTest test =
            gam::litmus::generateTest(kSeed, i);
        ASSERT_FALSE(test.check().has_value()) << test.name;
        for (ModelKind model : kModels) {
            const Decision d =
                checkOne(test, model, EngineSelect::Axiomatic,
                         &on_cache, &off_cache);
            ++decisions;
            hits += d.prescreened != PrescreenKind::None;
        }
    }
    std::printf("[ prescreen ] %llu generated tests: %zu/%zu decisions "
                "short-circuited\n",
                static_cast<unsigned long long>(kTests), hits,
                decisions);
}

// The analysis layer's own verdicts, independent of decide():
// spot-check the two short-circuit shapes on corpus tests whose
// structure forces them.
TEST(Prescreen, ValueCoverRejectsUnsatisfiableFinals)
{
    // mp asks for r1=1, r2=0 -- satisfiable, so no value-cover claim;
    // rewriting the condition to a value no store writes must trip it.
    for (const auto &test : gam::litmus::allTests()) {
        if (test.name != "mp")
            continue;
        gam::litmus::LitmusTest bogus = test;
        ASSERT_FALSE(bogus.regCond.empty());
        bogus.regCond[0].value = 0x7777; // nothing ever stores this
        const auto r = prescreen(bogus, ModelKind::GAM);
        EXPECT_EQ(r.verdict, PrescreenVerdict::Forbidden) << r.detail;
        const auto sane = prescreen(test, ModelKind::GAM);
        EXPECT_NE(sane.verdict, PrescreenVerdict::Forbidden);
        return;
    }
    FAIL() << "builtin test 'mp' not found";
}

TEST(Prescreen, ScDelegateOnFullyFencedTests)
{
    // Every po-adjacent pair in mp_fenced and iriw_fenced is ordered
    // by a fence, so GAM's ppo provably covers po and the outcome set
    // equals SC's.
    size_t found = 0;
    for (const auto &test : gam::litmus::allTests()) {
        if (test.name != "mp_fenced" && test.name != "iriw_fenced")
            continue;
        ++found;
        const auto r = prescreen(test, ModelKind::GAM);
        EXPECT_EQ(r.verdict, PrescreenVerdict::ScEquivalent)
            << test.name << ": " << r.detail;
    }
    EXPECT_EQ(found, 2u);
}

TEST(Prescreen, UnknownModelsNeverDelegate)
{
    // ARM's operational outcomes are conservative (not exact), so the
    // delegate path must not claim outcome equality for it.
    for (const auto &test : gam::litmus::allTests()) {
        const auto r = prescreen(test, ModelKind::ARM);
        EXPECT_NE(r.verdict, PrescreenVerdict::ScEquivalent)
            << test.name;
    }
}

} // namespace
