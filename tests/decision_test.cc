/**
 * Tests for the unified decide(Query) -> Decision API: engine
 * registry/capability introspection, parity with the legacy bool
 * entry points and with the engines invoked directly, and the
 * correctness of the memoizing DecisionCache.
 */

#include <gtest/gtest.h>

#include "axiomatic/checker.hh"
#include "base/hashing.hh"
#include "base/thread_pool.hh"
#include "harness/decision.hh"
#include "harness/experiments.hh"
#include "harness/litmus_runner.hh"
#include "litmus/suite.hh"
#include "model/engine.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "operational/sc_machine.hh"
#include "operational/tso_machine.hh"

namespace gam::harness
{
namespace
{

using model::Engine;
using model::ModelKind;

constexpr ModelKind allModels[] = {
    ModelKind::SC,   ModelKind::TSO,       ModelKind::GAM0,
    ModelKind::GAM,  ModelKind::ARM,       ModelKind::AlphaStar,
    ModelKind::PerLocSC,
};

/** The engines' ground truth, bypassing decide() entirely. */
litmus::OutcomeSet
directOperationalOutcomes(const litmus::LitmusTest &test, ModelKind model)
{
    if (model == ModelKind::SC)
        return operational::exploreAll(operational::ScMachine(test))
            .outcomes;
    if (model == ModelKind::TSO)
        return operational::exploreAll(operational::TsoMachine(test))
            .outcomes;
    operational::GamOptions opts;
    opts.kind = model;
    return operational::exploreAll(operational::GamMachine(test, opts))
        .outcomes;
}

Query
queryFor(const litmus::LitmusTest &test, ModelKind model,
         EngineSelect engine)
{
    Query q;
    q.test = &test;
    q.model = model;
    q.engine = engine;
    return q;
}

TEST(EngineRegistry, CapabilitiesMatchTheEngines)
{
    for (ModelKind model : allModels) {
        EXPECT_EQ(model::supportsEngine(model, Engine::Axiomatic),
                  model != ModelKind::AlphaStar);
        EXPECT_EQ(model::supportsEngine(model, Engine::Operational),
                  model != ModelKind::PerLocSC);
        // The cat engine decides exactly the models shipped as .cat
        // files: SC, TSO, GAM0 and GAM.
        EXPECT_EQ(model::supportsEngine(model, Engine::Cat),
                  model == ModelKind::SC || model == ModelKind::TSO
                      || model == ModelKind::GAM0
                      || model == ModelKind::GAM);
        const auto engines = model::engines(model);
        EXPECT_FALSE(engines.empty());
        for (Engine engine : engines)
            EXPECT_TRUE(model::supportsEngine(model, engine));
    }
    EXPECT_TRUE(model::hasEnginePair(ModelKind::GAM));
    EXPECT_FALSE(model::hasEnginePair(ModelKind::AlphaStar));
    EXPECT_FALSE(model::hasEnginePair(ModelKind::PerLocSC));
    EXPECT_FALSE(model::operationalOutcomesExact(ModelKind::ARM));
    EXPECT_TRUE(model::operationalOutcomesExact(ModelKind::GAM));
}

TEST(EngineRegistry, NamesRoundTrip)
{
    for (Engine engine : model::allEngines)
        EXPECT_EQ(model::engineFromName(model::engineName(engine)),
                  engine);
    EXPECT_FALSE(model::engineFromName("axiomatical").has_value());
}

TEST(EngineRegistry, AutoPrefersAxiomaticWhenDefined)
{
    const auto &t = litmus::testByName("mp");
    EXPECT_EQ(resolveEngine(queryFor(t, ModelKind::GAM,
                                     EngineSelect::Auto)),
              Engine::Axiomatic);
    EXPECT_EQ(resolveEngine(queryFor(t, ModelKind::PerLocSC,
                                     EngineSelect::Auto)),
              Engine::Axiomatic);
    EXPECT_EQ(resolveEngine(queryFor(t, ModelKind::AlphaStar,
                                     EngineSelect::Auto)),
              Engine::Operational);
    EXPECT_EQ(resolveEngine(queryFor(t, ModelKind::GAM,
                                     EngineSelect::Operational)),
              Engine::Operational);
}

TEST(DecisionParity, MatchesLegacyEntryPointsOnAllBuiltins)
{
    DecisionCache cache;
    for (const auto &test : litmus::allTests()) {
        for (ModelKind model : allModels) {
            if (model::supportsEngine(model, Engine::Axiomatic)) {
                const Decision d = decide(
                    queryFor(test, model, EngineSelect::Axiomatic),
                    &cache);
                EXPECT_EQ(d.allowed, axiomaticAllowed(test, model))
                    << test.name << " " << model::modelName(model);
                EXPECT_EQ(d.engine, Engine::Axiomatic);
                EXPECT_TRUE(d.complete);
            }
            if (model::supportsEngine(model, Engine::Operational)) {
                const Decision d = decide(
                    queryFor(test, model, EngineSelect::Operational),
                    &cache);
                EXPECT_EQ(d.allowed, operationalAllowed(test, model))
                    << test.name << " " << model::modelName(model);
                EXPECT_EQ(d.allowed,
                          operationalAllowedParallel(test, model, 4))
                    << test.name << " " << model::modelName(model);
                EXPECT_EQ(d.engine, Engine::Operational);
            }
        }
    }
}

TEST(DecisionParity, MatchesEnginesInvokedDirectly)
{
    // Bypass every wrapper: the Decision's outcome set and verdict
    // must equal the raw Checker / explorer results.
    for (const char *name : {"dekker", "mp", "sb_fenced", "corr"}) {
        const auto &test = litmus::testByName(name);
        for (ModelKind model :
             {ModelKind::SC, ModelKind::TSO, ModelKind::GAM}) {
            const Decision ax = decide(
                queryFor(test, model, EngineSelect::Axiomatic), nullptr);
            axiomatic::Checker checker(test, model);
            EXPECT_EQ(ax.outcomes, checker.enumerate())
                << name << " " << model::modelName(model);
            axiomatic::Checker oracle(test, model);
            EXPECT_EQ(ax.allowed, oracle.isAllowed())
                << name << " " << model::modelName(model);

            const Decision op = decide(
                queryFor(test, model, EngineSelect::Operational),
                nullptr);
            EXPECT_EQ(op.outcomes,
                      directOperationalOutcomes(test, model))
                << name << " " << model::modelName(model);
        }
    }
}

TEST(DecisionParity, MatrixEngineSelectionFiltersRows)
{
    const std::vector<litmus::LitmusTest> tests{
        litmus::testByName("mp")};
    const std::vector<ModelKind> models{ModelKind::SC, ModelKind::GAM,
                                        ModelKind::AlphaStar};
    DecisionCache cache;

    MatrixOptions both;
    both.cache = &cache;
    // SC and GAM have three engines each (axiomatic, operational,
    // cat), AlphaStar only the machine: 7 rows.
    EXPECT_EQ(runLitmusMatrix(tests, models, both).size(), 7u);

    MatrixOptions on_auto;
    on_auto.engine = EngineSelect::Auto;
    on_auto.cache = &cache;
    const auto rows = runLitmusMatrix(tests, models, on_auto);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].engine, Engine::Axiomatic);
    EXPECT_EQ(rows[2].engine, Engine::Operational); // Alpha*

    MatrixOptions operational_only;
    operational_only.engine = EngineSelect::Operational;
    operational_only.cache = &cache;
    // PerLocSC would be skipped; these three all have machines.
    EXPECT_EQ(runLitmusMatrix(tests, models, operational_only).size(),
              3u);
}

TEST(Fingerprint, IgnoresMetadataButNotSemantics)
{
    litmus::LitmusTest a = litmus::testByName("mp");
    litmus::LitmusTest b = a;
    b.name = "renamed";
    b.description = "different prose";
    b.paperRef = "nowhere";
    b.expected.clear();
    EXPECT_EQ(litmus::fingerprint(a), litmus::fingerprint(b));

    litmus::LitmusTest c = a;
    c.threads[0].code.pop_back();
    EXPECT_NE(litmus::fingerprint(a), litmus::fingerprint(c));

    litmus::LitmusTest d = a;
    ASSERT_FALSE(d.regCond.empty());
    d.regCond[0].value ^= 1;
    EXPECT_NE(litmus::fingerprint(a), litmus::fingerprint(d));
}

TEST(DecisionCache, WarmDecisionIdenticalToCold)
{
    DecisionCache cache;
    const auto &test = litmus::testByName("dekker");
    for (EngineSelect engine :
         {EngineSelect::Axiomatic, EngineSelect::Operational}) {
        const Query q = queryFor(test, ModelKind::GAM, engine);
        const Decision cold = decide(q, &cache);
        const Decision warm = decide(q, &cache);
        EXPECT_FALSE(cold.cacheHit);
        EXPECT_TRUE(warm.cacheHit);
        EXPECT_EQ(warm.allowed, cold.allowed);
        EXPECT_EQ(warm.outcomes, cold.outcomes);
        EXPECT_EQ(warm.engine, cold.engine);
        EXPECT_EQ(warm.statesVisited, cold.statesVisited);
        EXPECT_EQ(warm.complete, cold.complete);
    }
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(cache.size(), 2u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(DecisionCache, StatsReportShardOccupancySkew)
{
    // Keys route to shard (key >> 59): three keys sharing their top 5
    // bits pile onto one shard, one key with different top bits lands
    // elsewhere.  The skew (max/mean) flags exactly this clustering.
    DecisionCache cache;
    Decision d;
    d.complete = true;
    cache.insert(0x1ull, d);
    cache.insert(0x2ull, d);
    cache.insert(0x3ull, d);

    auto stats = cache.stats();
    EXPECT_EQ(stats.residents, 3u);
    EXPECT_GT(stats.shardCount, 0u);
    EXPECT_EQ(stats.shardMax, 3u);
    EXPECT_DOUBLE_EQ(stats.shardMean,
                     3.0 / double(stats.shardCount));

    cache.insert(0x1ull << 59, d); // a different shard
    stats = cache.stats();
    EXPECT_EQ(stats.residents, 4u);
    EXPECT_EQ(stats.shardMax, 3u);
    EXPECT_DOUBLE_EQ(stats.shardMean,
                     4.0 / double(stats.shardCount));

    // clear() zeroes occupancy (and, as with every stat, evictions).
    cache.clear();
    stats = cache.stats();
    EXPECT_EQ(stats.residents, 0u);
    EXPECT_EQ(stats.shardMax, 0u);
    EXPECT_DOUBLE_EQ(stats.shardMean, 0.0);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(DecisionCache, TruncatedDecisionsAreNotCached)
{
    DecisionCache cache;
    Query q = queryFor(litmus::testByName("dekker"), ModelKind::GAM,
                       EngineSelect::Operational);
    q.options.stateBudget = 1;
    for (int i = 0; i < 2; ++i) {
        const Decision d = decide(q, &cache);
        EXPECT_FALSE(d.complete);
        EXPECT_FALSE(d.cacheHit);
    }
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().uncached, 2u);
}

TEST(DecisionCache, KeysSeparateModelEngineAndOptions)
{
    const auto &test = litmus::testByName("mp");
    const Query base = queryFor(test, ModelKind::GAM,
                                EngineSelect::Axiomatic);
    const uint64_t k = queryKey(base, Engine::Axiomatic);
    EXPECT_NE(k, queryKey(base, Engine::Operational));

    Query other_model = base;
    other_model.model = ModelKind::TSO;
    EXPECT_NE(k, queryKey(other_model, Engine::Axiomatic));

    // The budget never affects a key: only complete (exhaustive)
    // decisions are cached and those are budget-independent, so
    // frontends running with different budgets share entries.
    Query other_budget = base;
    other_budget.options.stateBudget = 7;
    EXPECT_EQ(k, queryKey(other_budget, Engine::Axiomatic));
    EXPECT_EQ(queryKey(base, Engine::Operational),
              queryKey(other_budget, Engine::Operational));

    // ... and symmetrically, checker knobs cannot affect the explorer.
    Query other_axioms = base;
    other_axioms.options.axiomatic.enforceInstOrder = false;
    EXPECT_NE(k, queryKey(other_axioms, Engine::Axiomatic));
    EXPECT_EQ(queryKey(base, Engine::Operational),
              queryKey(other_axioms, Engine::Operational));

    // threads must NOT affect the key: complete results are
    // scheduling-independent, so serial and parallel queries share.
    Query other_threads = base;
    other_threads.options.threads = 8;
    EXPECT_EQ(k, queryKey(other_threads, Engine::Axiomatic));
}

TEST(DecisionCache, CapacityIsBounded)
{
    DecisionCache cache(/*max_entries=*/32);
    Decision filler;
    filler.complete = true;
    for (uint64_t key = 0; key < 10'000; ++key)
        cache.insert(mix64(key), filler);
    // 32 shards x (32/32 + 1) entries: the cap is approximate but firm.
    EXPECT_LE(cache.size(), 64u);
}

TEST(DecisionCache, ConcurrentDecidesOnOneQueryAreRaceFree)
{
    DecisionCache cache;
    const auto &test = litmus::testByName("dekker");
    const Query q = queryFor(test, ModelKind::GAM,
                             EngineSelect::Operational);
    const Decision reference = decide(q, nullptr);

    constexpr size_t N = 64;
    std::vector<Decision> decisions(N);
    ThreadPool pool(8);
    pool.parallelFor(N, [&](size_t i) {
        decisions[i] = decide(q, &cache);
    });
    for (const auto &d : decisions) {
        EXPECT_EQ(d.allowed, reference.allowed);
        EXPECT_EQ(d.outcomes, reference.outcomes);
        EXPECT_EQ(d.complete, reference.complete);
    }
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, N);
    EXPECT_GE(stats.misses, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(DecisionParity, TruncatedVerdictsRenderAsInconclusive)
{
    const std::vector<litmus::LitmusTest> tests{
        litmus::testByName("dekker")};
    DecisionCache cache;
    MatrixOptions options;
    options.engine = EngineSelect::Operational;
    options.run.stateBudget = 10;
    options.cache = &cache;
    const auto verdicts =
        runLitmusMatrix(tests, {ModelKind::GAM}, options);
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_FALSE(verdicts[0].complete);
    // An inconclusive row never claims a (mis)match with the paper...
    EXPECT_TRUE(verdicts[0].matchesPaper());
    // ... and the rendering flags it instead of printing 'forbidden'.
    const std::string rendered = formatLitmusMatrix(verdicts);
    EXPECT_NE(rendered.find("truncated"), std::string::npos);
    EXPECT_EQ(rendered.find("MISMATCH"), std::string::npos);
}

TEST(Equivalence, TruncatedRowsAreNotDisagreements)
{
    const std::vector<litmus::LitmusTest> tests{
        litmus::testByName("dekker")};
    // Cache keys ignore the budget: flush any complete decision other
    // tests left behind so the tiny budget actually truncates.
    globalDecisionCache().clear();
    RunOptions run;
    run.stateBudget = 10;
    const auto rows =
        runEquivalenceExperiment(tests, {ModelKind::GAM}, run);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_FALSE(rows[0].operational.complete);
    EXPECT_FALSE(rows[0].agree);
    const std::string rendered = formatEquivalence(rows);
    EXPECT_NE(rendered.find("truncated"), std::string::npos);
    EXPECT_NE(rendered.find("0 disagreements"), std::string::npos);
}

TEST(Equivalence, ExperimentAgreesOnTheClassicSuite)
{
    const std::vector<litmus::LitmusTest> tests{
        litmus::testByName("mp"), litmus::testByName("dekker")};
    const std::vector<ModelKind> models{
        ModelKind::SC, ModelKind::GAM, ModelKind::ARM,
        ModelKind::AlphaStar, // skipped: no axiomatic engine
    };
    const auto rows = runEquivalenceExperiment(tests, models);
    ASSERT_EQ(rows.size(), 6u); // 2 tests x 3 paired models
    for (const auto &row : rows)
        EXPECT_TRUE(row.agree)
            << row.test << " " << model::modelName(row.model);
    const std::string rendered = formatEquivalence(rows);
    EXPECT_NE(rendered.find("0 disagreements"), std::string::npos);
    EXPECT_NE(rendered.find("subset"), std::string::npos); // ARM rows
}

} // namespace
} // namespace gam::harness
