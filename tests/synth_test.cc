/** Tests for the fence synthesizer. */

#include <gtest/gtest.h>

#include <set>

#include "axiomatic/checker.hh"
#include "harness/fence_synth.hh"
#include "litmus/suite.hh"

namespace gam::harness
{
namespace
{

using model::ModelKind;

TEST(FenceSynth, AlreadyForbiddenNeedsNothing)
{
    // CoRR is already forbidden under GAM.
    SynthResult r = synthesizeFences(litmus::testByName("corr"),
                                     ModelKind::GAM);
    EXPECT_TRUE(r.solved);
    EXPECT_TRUE(r.fences.empty());
}

TEST(FenceSynth, CorrUnderGam0NeedsOneFence)
{
    // GAM0 allows the CoRR violation; one FenceLL between the loads
    // fixes it (Section III-E).
    SynthResult r = synthesizeFences(litmus::testByName("corr"),
                                     ModelKind::GAM0);
    ASSERT_TRUE(r.solved);
    ASSERT_EQ(r.fences.size(), 1u);
    EXPECT_EQ(r.fences[0].tid, 1);
    EXPECT_EQ(r.fences[0].kind, isa::FenceKind::LL);
}

TEST(FenceSynth, MpNeedsBothSides)
{
    // Unfenced message passing needs a producer FenceSS *and* a
    // consumer FenceLL (paper Section III-D / Figure 13).
    SynthResult r = synthesizeFences(litmus::testByName("mp"),
                                     ModelKind::GAM);
    ASSERT_TRUE(r.solved);
    ASSERT_EQ(r.fences.size(), 2u);
    std::set<int> tids{r.fences[0].tid, r.fences[1].tid};
    EXPECT_EQ(tids, (std::set<int>{0, 1}));
    for (const auto &f : r.fences) {
        if (f.tid == 0)
            EXPECT_EQ(f.kind, isa::FenceKind::SS);
        else
            EXPECT_EQ(f.kind, isa::FenceKind::LL);
    }
}

TEST(FenceSynth, DekkerNeedsStoreLoadFences)
{
    // Dekker requires FenceSL on both sides.
    SynthResult r = synthesizeFences(litmus::testByName("dekker"),
                                     ModelKind::GAM);
    ASSERT_TRUE(r.solved);
    ASSERT_EQ(r.fences.size(), 2u);
    for (const auto &f : r.fences)
        EXPECT_EQ(f.kind, isa::FenceKind::SL);
}

TEST(FenceSynth, SolutionActuallyForbids)
{
    for (const char *name : {"mp", "lb", "dekker", "corr"}) {
        const auto &test = litmus::testByName(name);
        SynthResult r = synthesizeFences(test, ModelKind::GAM);
        ASSERT_TRUE(r.solved) << name;
        auto fenced = applyFences(test, r.fences);
        axiomatic::Checker checker(fenced, ModelKind::GAM);
        EXPECT_FALSE(checker.isAllowed()) << name;
        EXPECT_GT(r.queriesIssued, 0u);
    }
}

TEST(FenceSynth, RespectsBound)
{
    // With a bound of zero insertions, an allowed behavior cannot be
    // fixed.
    SynthResult r = synthesizeFences(litmus::testByName("mp"),
                                     ModelKind::GAM, 0);
    EXPECT_FALSE(r.solved);
}

TEST(FenceSynth, ApplyFencesFixesBranchTargets)
{
    // Inserting a fence before a branch target keeps the branch
    // pointing at the same instruction.
    using isa::ProgramBuilder;
    using isa::R;
    litmus::LitmusTest t = litmus::LitmusBuilder("b", "unit")
        .location("a", 0x1000)
        .thread(ProgramBuilder()
                    .li(R(8), 0x1000)
                    .ld(R(1), R(8))
                    .bne(R(1), R(0), "end")
                    .ld(R(2), R(8))
                    .label("end")
                    .st(R(8), R(1))
                    .build())
        .requireReg(0, R(1), 0)
        .expect(ModelKind::GAM, true)
        .done();
    auto fenced = applyFences(t, {{0, 3, isa::FenceKind::LL}});
    // The branch at index 2 targeted instruction 4; with one insertion
    // at 3 it must now target 5 (the store).
    EXPECT_EQ(fenced.threads[0][2].imm, 5);
    EXPECT_TRUE(fenced.threads[0][3].isFence());
    EXPECT_TRUE(fenced.threads[0][5].isStore());
}

TEST(FenceSynth, InsertionToString)
{
    FenceInsertion f{1, 3, isa::FenceKind::SS};
    EXPECT_EQ(f.toString(), "P1: FenceSS before instruction 3");
}

} // namespace
} // namespace gam::harness
