/** Tests for the experiment harness and litmus runner. */

#include <gtest/gtest.h>

#include "harness/experiments.hh"
#include "harness/litmus_runner.hh"
#include "litmus/suite.hh"

namespace gam::harness
{
namespace
{

using model::ModelKind;

std::vector<RunResult>
syntheticResults()
{
    std::vector<RunResult> results;
    for (const auto &spec : workload::workloadSuite()) {
        for (ModelKind kind : {ModelKind::GAM, ModelKind::ARM,
                               ModelKind::GAM0, ModelKind::AlphaStar}) {
            RunResult r;
            r.workload = spec.name;
            r.model = kind;
            r.stats.cycles = 1000;
            r.stats.committedUops = 2000;
            r.stats.saLdLdKills = kind == ModelKind::GAM ? 2 : 0;
            r.stats.saLdLdStalls = kind != ModelKind::GAM0
                && kind != ModelKind::AlphaStar ? 3 : 0;
            r.stats.llForwards = kind == ModelKind::AlphaStar ? 44 : 0;
            r.stats.l1dLoadMisses = 10;
            results.push_back(r);
        }
    }
    return results;
}

TEST(HarnessFind, LooksUpRuns)
{
    auto results = syntheticResults();
    const RunResult &r = find(results, "histogram", ModelKind::ARM);
    EXPECT_EQ(r.workload, "histogram");
    EXPECT_EQ(r.model, ModelKind::ARM);
}

TEST(HarnessFind, MissingRunIsFatal)
{
    std::vector<RunResult> empty;
    EXPECT_DEATH(find(empty, "x", ModelKind::GAM), "no result");
}

TEST(HarnessFormat, Fig18ContainsAllWorkloadsAndAverage)
{
    std::string s = formatFig18(syntheticResults());
    for (const auto &spec : workload::workloadSuite())
        EXPECT_NE(s.find(spec.name), std::string::npos) << spec.name;
    EXPECT_NE(s.find("average"), std::string::npos);
    EXPECT_NE(s.find("Figure 18"), std::string::npos);
    // Equal uPCs: normalized columns print 1.0000.
    EXPECT_NE(s.find("1.0000"), std::string::npos);
}

TEST(HarnessFormat, Table2RowsAndUnits)
{
    std::string s = formatTable2(syntheticResults());
    EXPECT_NE(s.find("Kills in GAM"), std::string::npos);
    EXPECT_NE(s.find("Stalls in GAM"), std::string::npos);
    EXPECT_NE(s.find("Stalls in ARM"), std::string::npos);
    // 2 kills / 2000 uops = 1 per 1K.
    EXPECT_NE(s.find("1.000"), std::string::npos);
}

TEST(HarnessFormat, Table3Rows)
{
    std::string s = formatTable3(syntheticResults());
    EXPECT_NE(s.find("Load-load forwardings"), std::string::npos);
    EXPECT_NE(s.find("Reduced L1 load misses"), std::string::npos);
    // 44 forwards / 2000 uops = 22 per 1K, the paper's average.
    EXPECT_NE(s.find("22.00"), std::string::npos);
}

TEST(HarnessFormat, Table1MirrorsTableI)
{
    std::string s = formatTable1(sim::CoreParams{},
                                 mem::MemSystemParams{});
    EXPECT_NE(s.find("192 ROB"), std::string::npos);
    EXPECT_NE(s.find("60 RS"), std::string::npos);
    EXPECT_NE(s.find("72 LQ"), std::string::npos);
    EXPECT_NE(s.find("42 SQ"), std::string::npos);
    EXPECT_NE(s.find("12.8 GB/s"), std::string::npos);
    EXPECT_NE(s.find("l1d"), std::string::npos);
}

TEST(HarnessRun, RunOneProducesStats)
{
    // A fast run: tiny workload via a custom spec.
    workload::WorkloadSpec spec;
    spec.name = "mini";
    spec.description = "unit-test workload";
    spec.maxUops = 5000;
    spec.build = [] {
        workload::BuiltWorkload b;
        isa::ProgramBuilder pb;
        pb.li(isa::R(1), 0x1000).li(isa::R(4), 900)
          .label("loop")
          .ld(isa::R(2), isa::R(1))
          .addi(isa::R(4), isa::R(4), -1)
          .bne(isa::R(4), isa::R(0), "loop")
          .halt();
        b.program = pb.build();
        return b;
    };
    CampaignConfig config;
    config.warmupUops = 100;
    RunResult r = runOne(spec, ModelKind::GAM, config);
    EXPECT_GT(r.stats.committedUops, 2000u);
    EXPECT_GT(r.stats.upc(), 0.0);
}

TEST(LitmusRunner, AxiomaticDekkerVerdicts)
{
    const auto &t = litmus::testByName("dekker");
    EXPECT_FALSE(axiomaticAllowed(t, ModelKind::SC));
    EXPECT_TRUE(axiomaticAllowed(t, ModelKind::GAM));
}

TEST(LitmusRunner, OperationalDekkerVerdicts)
{
    const auto &t = litmus::testByName("dekker");
    EXPECT_FALSE(operationalAllowed(t, ModelKind::SC));
    EXPECT_TRUE(operationalAllowed(t, ModelKind::TSO));
    EXPECT_TRUE(operationalAllowed(t, ModelKind::GAM));
}

TEST(LitmusRunner, ParallelMatrixMatchesSerial)
{
    // The batch runner writes each verdict to a pre-assigned slot, so
    // the parallel matrix must equal the serial one element-for-element
    // at any team size.
    const auto &tests = litmus::paperSuite();
    const auto serial = runLitmusMatrix(tests);
    for (unsigned threads : {1u, 2u, 8u}) {
        const auto parallel = runLitmusMatrixParallel(tests, threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(parallel[i].test, serial[i].test);
            EXPECT_EQ(parallel[i].model, serial[i].model);
            EXPECT_EQ(parallel[i].engine, serial[i].engine);
            EXPECT_EQ(parallel[i].allowed, serial[i].allowed);
            EXPECT_EQ(parallel[i].expected, serial[i].expected);
        }
    }
}

TEST(LitmusRunner, OperationalParallelAgreesOnVerdicts)
{
    for (const char *name : {"dekker", "mp", "sb_fenced"}) {
        const auto &t = litmus::testByName(name);
        for (ModelKind kind : {ModelKind::SC, ModelKind::TSO,
                               ModelKind::GAM}) {
            EXPECT_EQ(operationalAllowedParallel(t, kind, 4),
                      operationalAllowed(t, kind))
                << name << " under " << model::modelName(kind);
        }
    }
}

TEST(LitmusRunner, MatrixOnOneTest)
{
    std::vector<litmus::LitmusTest> one{litmus::testByName("corr")};
    auto verdicts = runLitmusMatrix(one);
    EXPECT_FALSE(verdicts.empty());
    for (const auto &v : verdicts)
        EXPECT_TRUE(v.matchesPaper())
            << v.test << " " << model::modelName(v.model);
    std::string s = formatLitmusMatrix(verdicts);
    EXPECT_NE(s.find("corr"), std::string::npos);
    EXPECT_NE(s.find("0 mismatches"), std::string::npos);
}

} // namespace
} // namespace gam::harness
