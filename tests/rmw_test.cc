/**
 * Tests for atomic read-modify-write support (paper Section III-C):
 * ISA classification, functional semantics, ppo treatment, and
 * atomicity under both verification engines.
 */

#include <gtest/gtest.h>

#include "axiomatic/checker.hh"
#include "isa/assembler.hh"
#include "isa/emulator.hh"
#include "isa/semantics.hh"
#include "litmus/suite.hh"
#include "model/ppo.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "operational/tso_machine.hh"
#include "sim/core.hh"
#include "sim/trace_gen.hh"

namespace gam
{
namespace
{

using isa::Opcode;
using isa::R;
using model::ModelKind;

TEST(RmwIsa, ClassifiedAsLoadAndStore)
{
    isa::Instruction i = isa::makeRmw(Opcode::AMOADD, R(1), R(2), R(3));
    EXPECT_TRUE(i.isRmw());
    EXPECT_TRUE(i.isLoad());
    EXPECT_TRUE(i.isStore());
    EXPECT_TRUE(i.isMem());
    EXPECT_FALSE(i.isRegToReg());
    EXPECT_TRUE(i.isMemType(isa::MemType::Load));
    EXPECT_TRUE(i.isMemType(isa::MemType::Store));
}

TEST(RmwIsa, RegisterSets)
{
    isa::Instruction i = isa::makeRmw(Opcode::AMOSWAP, R(1), R(2), R(3));
    auto rs = i.readSet();
    EXPECT_EQ(rs.size(), 2u);
    EXPECT_EQ(i.writeSet().size(), 1u);
    EXPECT_EQ(i.writeSet()[0], R(1));
    ASSERT_EQ(i.addrReadSet().size(), 1u);
    EXPECT_EQ(i.addrReadSet()[0], R(2));
    ASSERT_EQ(i.dataReadSet().size(), 1u);
    EXPECT_EQ(i.dataReadSet()[0], R(3));
}

TEST(RmwIsa, StoredValueSemantics)
{
    isa::Instruction swap = isa::makeRmw(Opcode::AMOSWAP, R(1), R(2),
                                         R(3));
    isa::Instruction add = isa::makeRmw(Opcode::AMOADD, R(1), R(2), R(3));
    EXPECT_EQ(isa::evalRmwStored(swap, 10, 99), 99);
    EXPECT_EQ(isa::evalRmwStored(add, 10, 5), 15);
}

TEST(RmwIsa, AssemblerSyntax)
{
    isa::Program p = isa::assemble(R"(
        amoswap r1, [r2+8], r3
        amoadd  r4, [r5], r6
    )");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0].op, Opcode::AMOSWAP);
    EXPECT_EQ(p[0].imm, 8);
    EXPECT_EQ(p[1].op, Opcode::AMOADD);
    EXPECT_EQ(p[1].dst, R(4));
}

TEST(RmwIsa, Disassembly)
{
    isa::Instruction i = isa::makeRmw(Opcode::AMOADD, R(1), R(2), R(3));
    EXPECT_EQ(i.toString(), "amoadd r1, [r2], r3");
}

TEST(RmwEmulator, SwapAndAdd)
{
    isa::Program p = isa::assemble(R"(
        li r1, 0x1000
        li r2, 7
        amoadd r3, [r1], r2    # mem: 0 -> 7, r3 = 0
        li r4, 42
        amoswap r5, [r1], r4   # mem: 7 -> 42, r5 = 7
        ld r6, [r1]
        halt
    )");
    isa::Emulator emu(p);
    emu.run();
    EXPECT_EQ(emu.reg(R(3)), 0);
    EXPECT_EQ(emu.reg(R(5)), 7);
    EXPECT_EQ(emu.reg(R(6)), 42);
}

TEST(RmwPpo, ActsAsStoreAndLoad)
{
    using model::Trace;
    using model::TraceInstr;
    TraceInstr ld, rmw, ld2;
    ld.instr = isa::makeLoad(R(1), R(8));
    ld.addr = 0x1000;
    rmw.instr = isa::makeRmw(Opcode::AMOADD, R(2), R(8), R(3));
    rmw.addr = 0x1000;
    ld2.instr = isa::makeLoad(R(4), R(8));
    ld2.addr = 0x1000;
    Trace t{ld, rmw, ld2};

    // SAMemSt: the RMW's store side is ordered after the older load.
    EXPECT_TRUE(model::ppo_case::saMemSt(t)(0, 1));
    // SALdLd: the RMW pairs with the older load as a load...
    model::Relation ll = model::ppo_case::saLdLd(t);
    EXPECT_TRUE(ll(0, 1));
    // ... and shields the younger load from the older one as a store.
    EXPECT_TRUE(ll(1, 2));
    EXPECT_FALSE(ll(0, 2));
    // BrSt-style: under TSO an RMW is not reorderable with anything.
    model::Relation tso = model::preservedProgramOrder(
        t, ModelKind::TSO);
    EXPECT_TRUE(tso(1, 2));
}

TEST(RmwPpo, FenceOrdersBothSides)
{
    using model::Trace;
    using model::TraceInstr;
    TraceInstr rmw, f, rmw2;
    rmw.instr = isa::makeRmw(Opcode::AMOADD, R(1), R(8), R(2));
    rmw.addr = 0x1000;
    f.instr = isa::makeFence(isa::FenceKind::SL);
    rmw2.instr = isa::makeRmw(Opcode::AMOADD, R(3), R(9), R(4));
    rmw2.addr = 0x2000;
    Trace t{rmw, f, rmw2};
    model::Relation r = model::ppo_case::fenceOrd(t);
    EXPECT_TRUE(r(0, 1)); // RMW matches the S side of FenceSL
    EXPECT_TRUE(r(1, 2)); // and the L side
}

TEST(RmwAxiomatic, IncIncAlwaysSumsToTwo)
{
    // The full outcome set of rmw_inc_inc: memory always ends at 2 and
    // exactly one RMW reads 0.
    const auto &test = litmus::testByName("rmw_inc_inc");
    axiomatic::Checker checker(test, ModelKind::GAM);
    auto outcomes = checker.enumerate();
    ASSERT_FALSE(outcomes.empty());
    for (const auto &o : outcomes) {
        for (const auto &m : o.mem) {
            if (m.addr == litmus::LOC_A) {
                EXPECT_EQ(m.value, 2) << o.toString();
            }
        }
        isa::Value r1 = -1, r2 = -1;
        for (const auto &r : o.regs) {
            if (r.tid == 0 && r.reg == R(1))
                r1 = r.value;
            if (r.tid == 1 && r.reg == R(2))
                r2 = r.value;
        }
        EXPECT_TRUE((r1 == 0 && r2 == 1) || (r1 == 1 && r2 == 0))
            << o.toString();
    }
}

TEST(RmwAxiomatic, MutexUnderEveryAxiomaticModel)
{
    const auto &test = litmus::testByName("rmw_mutex");
    for (ModelKind kind : {ModelKind::SC, ModelKind::TSO, ModelKind::GAM0,
                           ModelKind::GAM, ModelKind::ARM}) {
        axiomatic::Checker checker(test, kind);
        EXPECT_FALSE(checker.isAllowed()) << model::modelName(kind);
    }
}

TEST(RmwOperational, MachineMatchesAxioms)
{
    // Outcome-set equality on the RMW litmus tests (GAM and GAM0).
    for (const char *name : {"rmw_inc_inc", "rmw_mutex", "rmw_dekker"}) {
        const auto &test = litmus::testByName(name);
        for (ModelKind kind : {ModelKind::GAM, ModelKind::GAM0}) {
            operational::GamOptions opts;
            opts.kind = kind;
            auto op = operational::exploreAll(
                operational::GamMachine(test, opts));
            ASSERT_TRUE(op.complete);
            axiomatic::Checker checker(test, kind);
            EXPECT_EQ(op.outcomes, checker.enumerate())
                << name << " under " << model::modelName(kind);
        }
    }
}

TEST(RmwOperational, TsoRmwIsFenceLike)
{
    // rmw_dekker is forbidden under TSO: the locked RMW drains the
    // store buffer and the in-order step keeps the younger load behind.
    const auto &test = litmus::testByName("rmw_dekker");
    auto outcomes = operational::exploreAll(
        operational::TsoMachine(test)).outcomes;
    for (const auto &o : outcomes)
        EXPECT_FALSE(test.conditionMatches(o));
}

TEST(RmwSim, CycleSimulatorRejectsRmw)
{
    isa::Program p = isa::assemble(
        "li r1, 0x1000\nli r2, 1\namoadd r3, [r1], r2\nhalt\n");
    sim::DynTrace trace = sim::generateTrace(p, {}, 100);
    EXPECT_DEATH({ sim::Core core(trace, ModelKind::GAM); },
                 "does not model RMW");
}

} // namespace
} // namespace gam
