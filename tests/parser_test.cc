/**
 * The litmus text frontend: recoverable assembly, disassembly,
 * parsing, canonical printing, and the pinned corpus.
 *
 * The central property is the parse -> print -> parse fixpoint: for
 * every built-in test, printLitmus() output parses back to a
 * semantically identical test and re-prints byte-identically.  The
 * recoverable error paths (the reason this frontend can exist at all)
 * are checked to return diagnostics instead of killing the process.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "harness/litmus_runner.hh"
#include "isa/assembler.hh"
#include "litmus/parser.hh"
#include "litmus/suite.hh"
#include "model/kind.hh"

namespace gam
{
namespace
{

using litmus::LitmusTest;
using litmus::parseLitmus;
using litmus::printLitmus;

void
expectSameTest(const LitmusTest &a, const LitmusTest &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.paperRef, b.paperRef);
    EXPECT_EQ(a.description, b.description);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (size_t tid = 0; tid < a.threads.size(); ++tid)
        EXPECT_EQ(a.threads[tid].code, b.threads[tid].code) << tid;
    EXPECT_EQ(a.locations, b.locations);
    EXPECT_TRUE(a.initialMem == b.initialMem);
    ASSERT_EQ(a.regCond.size(), b.regCond.size());
    for (size_t i = 0; i < a.regCond.size(); ++i) {
        EXPECT_EQ(a.regCond[i].tid, b.regCond[i].tid);
        EXPECT_EQ(a.regCond[i].reg, b.regCond[i].reg);
        EXPECT_EQ(a.regCond[i].value, b.regCond[i].value);
    }
    ASSERT_EQ(a.memCond.size(), b.memCond.size());
    for (size_t i = 0; i < a.memCond.size(); ++i) {
        EXPECT_EQ(a.memCond[i].addr, b.memCond[i].addr);
        EXPECT_EQ(a.memCond[i].value, b.memCond[i].value);
    }
    EXPECT_EQ(a.expected, b.expected);
    EXPECT_EQ(a.observedRegs, b.observedRegs);
    EXPECT_EQ(a.addressUniverse, b.addressUniverse);
}

TEST(Parser, RoundTripFixpointOnEverySuiteTest)
{
    for (const LitmusTest &test : litmus::allTests()) {
        const std::string text = printLitmus(test);
        auto parsed = parseLitmus(text);
        ASSERT_TRUE(parsed) << test.name << ": "
                            << parsed.error.toString();
        expectSameTest(test, *parsed);
        EXPECT_EQ(text, printLitmus(*parsed))
            << test.name << ": parse -> print is not a fixpoint";
    }
}

TEST(Parser, ParsedTestKeepsEngineVerdicts)
{
    for (const char *name : {"dekker", "mp_fenced", "rmw_mutex"}) {
        const LitmusTest &original = *litmus::findTest(name);
        auto parsed = parseLitmus(printLitmus(original));
        ASSERT_TRUE(parsed) << parsed.error.toString();
        for (model::ModelKind kind :
             {model::ModelKind::SC, model::ModelKind::GAM}) {
            EXPECT_EQ(harness::axiomaticAllowed(original, kind),
                      harness::axiomaticAllowed(*parsed, kind))
                << name;
            EXPECT_EQ(harness::operationalAllowed(original, kind),
                      harness::operationalAllowed(*parsed, kind))
                << name;
        }
    }
}

TEST(Parser, HandWrittenDocumentNormalises)
{
    const char *doc = R"(# free-form input
litmus my_sb
desc "store buffering, hand written"
location x 0x1000
location y 0x1008

thread 0 {
    li r8, 0x1000   # hex immediates work
    li r9, 0x1008
    li r2, 1
    st [r8], r2
    ld r1, [r9]
}
thread 1 {
    li r8, 0x1000
    li r9, 0x1008
    li r2, 1
    st [r9], r2
    ld r1, [r8]
}
condition 0:r1=0 & 1:r1=0
expect SC forbidden
expect GAM allowed
)";
    auto parsed = parseLitmus(doc);
    ASSERT_TRUE(parsed) << parsed.error.toString();
    EXPECT_EQ(parsed->name, "my_sb");
    EXPECT_EQ(parsed->threads.size(), 2u);
    EXPECT_EQ(parsed->regCond.size(), 2u);
    // Normalised text is a fixpoint even for free-form input.
    const std::string canon = printLitmus(*parsed);
    auto reparsed = parseLitmus(canon);
    ASSERT_TRUE(reparsed);
    EXPECT_EQ(canon, printLitmus(*reparsed));
    // And the verdicts come out right.
    EXPECT_FALSE(harness::axiomaticAllowed(*parsed,
                                           model::ModelKind::SC));
    EXPECT_TRUE(harness::axiomaticAllowed(*parsed,
                                          model::ModelKind::GAM));
}

struct BadDoc
{
    const char *source;
    int line;            ///< expected error line (0 = document level)
    const char *needle;  ///< substring of the expected message
};

TEST(Parser, MalformedDocumentsReturnDiagnostics)
{
    const BadDoc cases[] = {
        {"", 0, "empty document"},
        {"location a 0x1000\n", 1, "must start with 'litmus"},
        {"litmus t\nbogus 1\n", 2, "unknown section keyword"},
        {"litmus t\nlitmus u\n", 2, "duplicate 'litmus'"},
        {"litmus t\nlocation a 0x1001\n", 2, "aligned"},
        {"litmus t\nlocation a 0x1000\nlocation a 0x1008\n", 3,
         "duplicate location"},
        {"litmus t\ninit [0x1000 1\n", 2, "expected ']'"},
        {"litmus t\nthread 1 {\n}\n", 2, "expected 'thread 0'"},
        {"litmus t\nthread 0 {\n    ld r1\n}\n", 3, "expected ','"},
        {"litmus t\nthread 0 {\n    frobnicate r1\n}\n", 3,
         "unknown mnemonic"},
        {"litmus t\nthread 0 {\n    li r1, 1\n", 2,
         "unterminated thread block"},
        {"litmus t\nthread 0 {\n    li r99, 1\n}\n", 3,
         "register out of range"},
        {"litmus t\nthread 0 {\n    li r1, "
         "999999999999999999999999\n}\n", 3, "number out of range"},
        {"litmus t\nthread 0 {\n    jmp nowhere\n}\n", 2,
         "undefined label"},
        {"litmus t\nthread 0 {\nx:\n    nop\nx:\n    nop\n}\n", 5,
         "duplicate label"},
        {"litmus t\nthread 0 {\n    nop\n}\ncondition 9:r1=0\n", 0,
         "references thread 9"},
        {"litmus t\nthread 0 {\n    nop\n}\ncondition 0:r1\n", 5,
         "expected '='"},
        {"litmus t\nthread 0 {\n    nop\n}\nexpect FOO allowed\n", 5,
         "unknown model"},
        {"litmus t\nthread 0 {\n    nop\n}\nexpect GAM maybe\n", 5,
         "'allowed' or 'forbidden'"},
        {"litmus t\nthread 0 {\n    nop\n}\nexpect GAM allowed\n"
         "expect GAM allowed\n", 6, "duplicate 'expect"},
        {"litmus t\ncondition 0:r1=0\n", 0, "no threads"},
        // A huge tid must not truncate into a valid thread index.
        {"litmus t\nthread 0 {\n    nop\n}\n"
         "condition 4294967296:r1=1\n", 5, "thread index out of range"},
        {"litmus t\nthread 0 {\nback:\n    nop\n    jmp back\n}\n", 0,
         "backward branch"},
    };
    for (const BadDoc &c : cases) {
        auto parsed = parseLitmus(c.source);
        ASSERT_FALSE(parsed) << "accepted: " << c.source;
        EXPECT_EQ(parsed.error.line, c.line) << c.source << "\ngot: "
                                             << parsed.error.toString();
        EXPECT_NE(parsed.error.message.find(c.needle),
                  std::string::npos)
            << "message '" << parsed.error.message
            << "' does not mention '" << c.needle << "'";
    }
}

TEST(Parser, Int64MinParsesWithoutOverflow)
{
    // -2^63 exercises the negation edge case in the number scanner.
    auto parsed = parseLitmus(
        "litmus t\nlocation a 0x1000\n"
        "init [0x1000] -9223372036854775808\n"
        "thread 0 {\n    li r8, 4096\n    ld r1, [r8]\n}\n"
        "condition 0:r1=0\n");
    ASSERT_TRUE(parsed) << parsed.error.toString();
    EXPECT_EQ(parsed->initialMem.load(0x1000),
              std::numeric_limits<int64_t>::min());
    const std::string text = printLitmus(*parsed);
    auto reparsed = parseLitmus(text);
    ASSERT_TRUE(reparsed);
    EXPECT_EQ(text, printLitmus(*reparsed));
}

TEST(Assembler, ErrorsAreRecoverable)
{
    auto bad = isa::assembleOrError("li r1, 5\nld r2 [r1]\n");
    ASSERT_FALSE(bad);
    EXPECT_EQ(bad.diag.line, 2);
    EXPECT_NE(bad.diag.toString().find("asm line 2"),
              std::string::npos);

    auto good = isa::assembleOrError("li r1, 5\nhalt\n");
    ASSERT_TRUE(good);
    EXPECT_EQ(good->size(), 2u);
}

TEST(Assembler, DisassemblyReassembles)
{
    for (const LitmusTest &test : litmus::allTests()) {
        for (const isa::Program &prog : test.threads) {
            const std::string text = isa::disassemble(prog);
            auto back = isa::assembleOrError(text);
            ASSERT_TRUE(back) << test.name << ":\n" << text << "\n"
                              << back.diag.toString();
            EXPECT_EQ(prog.code, back->code) << test.name;
            EXPECT_EQ(text, isa::disassemble(*back)) << test.name;
        }
    }
}

TEST(Assembler, BuilderRecoverablePaths)
{
    isa::ProgramBuilder b;
    EXPECT_TRUE(b.tryLabel("x"));
    EXPECT_FALSE(b.tryLabel("x"));
    b.nop();
    b.jmp("missing");
    std::string error;
    EXPECT_FALSE(b.tryBuild(&error));
    EXPECT_NE(error.find("undefined label"), std::string::npos);
}

TEST(Suite, FindTestIsRecoverable)
{
    EXPECT_EQ(litmus::findTest("no_such_test"), nullptr);
    const litmus::LitmusTest *dekker = litmus::findTest("dekker");
    ASSERT_NE(dekker, nullptr);
    EXPECT_EQ(dekker->name, "dekker");
    EXPECT_DEATH(litmus::testByName("no_such_test"),
                 "unknown litmus test");
}

TEST(Corpus, PinnedFilesAreCanonicalFixpoints)
{
    const std::filesystem::path dir = GAM_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir));
    size_t good = 0, bad = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".litmus")
            continue;
        std::ifstream in(entry.path());
        std::ostringstream text;
        text << in.rdbuf();
        auto parsed = parseLitmus(text.str());
        if (entry.path().filename().string().starts_with("bad_")) {
            ++bad;
            EXPECT_FALSE(parsed) << entry.path();
            EXPECT_GT(parsed.error.line, 0) << entry.path();
            continue;
        }
        ++good;
        ASSERT_TRUE(parsed) << entry.path() << ": "
                            << parsed.error.toString();
        EXPECT_EQ(text.str(), printLitmus(*parsed))
            << entry.path() << " is not in canonical form";
    }
    EXPECT_GE(good, 5u) << "corpus unexpectedly small";
    EXPECT_GE(bad, 1u) << "corpus lost its malformed specimen";
}

} // namespace
} // namespace gam
