/** Unit tests for dependency analysis and preserved program order. */

#include <gtest/gtest.h>

#include "model/deps.hh"
#include "model/kind.hh"
#include "model/ppo.hh"

namespace gam::model
{
namespace
{

using isa::FenceKind;
using isa::Opcode;
using isa::R;

TraceInstr
ti(isa::Instruction instr, isa::Addr addr = 0)
{
    TraceInstr t;
    t.instr = instr;
    t.addr = addr;
    return t;
}

TEST(ModelKindTest, Names)
{
    EXPECT_EQ(modelName(ModelKind::GAM), "GAM");
    EXPECT_EQ(modelName(ModelKind::AlphaStar), "Alpha*");
    EXPECT_TRUE(isGamFamily(ModelKind::GAM0));
    EXPECT_FALSE(isGamFamily(ModelKind::SC));
}

TEST(RelationTest, TransitiveClosure)
{
    Relation r(3);
    r.set(0, 1);
    r.set(1, 2);
    r.transitiveClose();
    EXPECT_TRUE(r(0, 2));
    EXPECT_FALSE(r(2, 0));
}

TEST(RelationTest, CycleDetection)
{
    Relation r(3);
    r.set(0, 1);
    r.set(1, 2);
    EXPECT_FALSE(r.hasCycle());
    r.set(2, 0);
    EXPECT_TRUE(r.hasCycle());
}

TEST(DataDeps, DirectRaw)
{
    // I0 writes r1; I1 reads r1.
    Trace t{ti(isa::makeLi(R(1), 5)),
            ti(isa::makeAlu(Opcode::ADD, R(2), R(1), R(1)))};
    Relation d = dataDeps(t);
    EXPECT_TRUE(d(0, 1));
    EXPECT_FALSE(d(1, 0));
}

TEST(DataDeps, LastWriterWins)
{
    // I0 and I1 both write r1; only I1 feeds I2 (Definition 4).
    Trace t{ti(isa::makeLi(R(1), 1)),
            ti(isa::makeLi(R(1), 2)),
            ti(isa::makeAlu(Opcode::ADD, R(2), R(1), R(1)))};
    Relation d = dataDeps(t);
    EXPECT_FALSE(d(0, 2));
    EXPECT_TRUE(d(1, 2));
}

TEST(DataDeps, ThroughStoreData)
{
    // The load feeding a store's data is a ddep producer of the store.
    Trace t{ti(isa::makeLoad(R(1), R(9)), 0x1000),
            ti(isa::makeStore(R(8), R(1)), 0x2000)};
    Relation d = dataDeps(t);
    EXPECT_TRUE(d(0, 1));
}

TEST(AddrDeps, OnlyAddressSources)
{
    // I0 produces the *data* of the store, I1 the address: only I1 is
    // an address dependency (Definition 5).
    Trace t{ti(isa::makeLi(R(2), 7)),
            ti(isa::makeLi(R(8), 0x1000)),
            ti(isa::makeStore(R(8), R(2)), 0x1000)};
    Relation a = addrDeps(t);
    EXPECT_FALSE(a(0, 2));
    EXPECT_TRUE(a(1, 2));
    Relation d = dataDeps(t);
    EXPECT_TRUE(d(0, 2)); // but it is a data dependency
}

TEST(PpoCase, SaMemStOrdersStoresAfterSameAddrAccess)
{
    Trace t{ti(isa::makeLoad(R(1), R(8)), 0x1000),
            ti(isa::makeStore(R(8), R(2)), 0x1000),
            ti(isa::makeStore(R(9), R(2)), 0x2000)};
    Relation r = ppo_case::saMemSt(t);
    EXPECT_TRUE(r(0, 1));   // load then same-address store
    EXPECT_FALSE(r(0, 2));  // different address
    EXPECT_FALSE(r(1, 0));
}

TEST(PpoCase, SaStLdThroughForwardableStore)
{
    // I0 produces data of store I1; load I2 reads the same address:
    // I0 <ppo I2 (constraint SAStLd).
    Trace t{ti(isa::makeLi(R(1), 5)),
            ti(isa::makeStore(R(8), R(1)), 0x1000),
            ti(isa::makeLoad(R(2), R(8)), 0x1000)};
    Relation r = ppo_case::saStLd(t);
    EXPECT_TRUE(r(0, 2));
    EXPECT_FALSE(r(1, 2)); // the store itself is not related by SAStLd
}

TEST(PpoCase, SaStLdOnlyImmediatelyPrecedingStore)
{
    // A second same-address store between hides the first.
    Trace t{ti(isa::makeLi(R(1), 5)),
            ti(isa::makeStore(R(8), R(1)), 0x1000),
            ti(isa::makeLi(R(2), 6)),
            ti(isa::makeStore(R(8), R(2)), 0x1000),
            ti(isa::makeLoad(R(3), R(8)), 0x1000)};
    Relation r = ppo_case::saStLd(t);
    EXPECT_FALSE(r(0, 4));
    EXPECT_TRUE(r(2, 4));
}

TEST(PpoCase, SaLdLdConsecutiveLoads)
{
    Trace t{ti(isa::makeLoad(R(1), R(8)), 0x1000),
            ti(isa::makeLoad(R(2), R(8)), 0x1000),
            ti(isa::makeLoad(R(3), R(9)), 0x2000)};
    Relation r = ppo_case::saLdLd(t);
    EXPECT_TRUE(r(0, 1));
    EXPECT_FALSE(r(0, 2));
    EXPECT_FALSE(r(1, 2));
}

TEST(PpoCase, SaLdLdExemptWithInterveningStore)
{
    // Figure 14b: an intervening same-address store removes the edge.
    Trace t{ti(isa::makeLoad(R(1), R(8)), 0x1000),
            ti(isa::makeStore(R(8), R(2)), 0x1000),
            ti(isa::makeLoad(R(3), R(8)), 0x1000)};
    Relation r = ppo_case::saLdLd(t);
    EXPECT_FALSE(r(0, 2));
}

TEST(PpoCase, SaLdLdArmSameStoreUnordered)
{
    Trace t{ti(isa::makeLoad(R(1), R(8)), 0x1000),
            ti(isa::makeLoad(R(2), R(8)), 0x1000)};
    RfMap same{5, 5};
    EXPECT_FALSE(ppo_case::saLdLdArm(t, same)(0, 1));
    RfMap diff{5, InitStore};
    EXPECT_TRUE(ppo_case::saLdLdArm(t, diff)(0, 1));
}

TEST(PpoCase, BrStOrdersStoresAfterBranches)
{
    Trace t{ti(isa::makeBranch(Opcode::BEQ, R(1), R(0), 2)),
            ti(isa::makeLoad(R(2), R(8)), 0x1000),
            ti(isa::makeStore(R(9), R(3)), 0x2000)};
    Relation r = ppo_case::brSt(t);
    EXPECT_TRUE(r(0, 2));
    EXPECT_FALSE(r(0, 1)); // loads are not ordered after branches
}

TEST(PpoCase, AddrStOrdersStoreAfterAddrProducer)
{
    // I0 produces the address of load I1; store I2 must wait for I0.
    Trace t{ti(isa::makeLi(R(8), 0x1000)),
            ti(isa::makeLoad(R(1), R(8)), 0x1000),
            ti(isa::makeStore(R(9), R(2)), 0x2000)};
    Relation r = ppo_case::addrSt(t);
    EXPECT_TRUE(r(0, 2));
    EXPECT_FALSE(r(1, 2)); // the load itself is not AddrSt-ordered
}

TEST(PpoCase, FenceOrdering)
{
    Trace t{ti(isa::makeLoad(R(1), R(8)), 0x1000),
            ti(isa::makeStore(R(9), R(2)), 0x2000),
            ti(isa::makeFence(FenceKind::LS)),
            ti(isa::makeLoad(R(3), R(8)), 0x1000),
            ti(isa::makeStore(R(9), R(4)), 0x2000)};
    Relation r = ppo_case::fenceOrd(t);
    EXPECT_TRUE(r(0, 2));   // older load -> FenceLS
    EXPECT_FALSE(r(1, 2));  // older store not ordered by FenceLS
    EXPECT_TRUE(r(2, 4));   // FenceLS -> younger store
    EXPECT_FALSE(r(2, 3));  // FenceLS does not order younger loads
}

TEST(Ppo, GamIncludesTransitivity)
{
    // Load -> (ddep) alu -> (ddep addr) load gives load <ppo load.
    Trace t{ti(isa::makeLoad(R(1), R(8)), 0x1000),
            ti(isa::makeAlu(Opcode::ADD, R(2), R(1), R(9))),
            ti(isa::makeLoad(R(3), R(2)), 0x2000)};
    Relation r = preservedProgramOrder(t, ModelKind::GAM);
    EXPECT_TRUE(r(0, 2));
}

TEST(Ppo, Gam0OmitsSaLdLd)
{
    Trace t{ti(isa::makeLoad(R(1), R(8)), 0x1000),
            ti(isa::makeLoad(R(2), R(8)), 0x1000)};
    EXPECT_FALSE(preservedProgramOrder(t, ModelKind::GAM0)(0, 1));
    EXPECT_TRUE(preservedProgramOrder(t, ModelKind::GAM)(0, 1));
}

TEST(Ppo, ScOrdersEverything)
{
    Trace t{ti(isa::makeStore(R(8), R(1)), 0x1000),
            ti(isa::makeLoad(R(2), R(9)), 0x2000)};
    EXPECT_TRUE(preservedProgramOrder(t, ModelKind::SC)(0, 1));
}

TEST(Ppo, TsoRelaxesStoreToLoadOnly)
{
    Trace t{ti(isa::makeStore(R(8), R(1)), 0x1000),
            ti(isa::makeLoad(R(2), R(9)), 0x2000),
            ti(isa::makeStore(R(8), R(3)), 0x1000)};
    Relation r = preservedProgramOrder(t, ModelKind::TSO);
    EXPECT_FALSE(r(0, 1)); // St -> Ld relaxed
    EXPECT_TRUE(r(1, 2));  // Ld -> St kept
    EXPECT_TRUE(r(0, 2));  // St -> St kept
}

TEST(Ppo, TsoFenceSlRestoresStoreLoad)
{
    Trace t{ti(isa::makeStore(R(8), R(1)), 0x1000),
            ti(isa::makeFence(FenceKind::SL)),
            ti(isa::makeLoad(R(2), R(9)), 0x2000)};
    Relation r = preservedProgramOrder(t, ModelKind::TSO);
    EXPECT_TRUE(r(0, 2));
}

TEST(Ppo, PerLocScOnlySameAddress)
{
    Trace t{ti(isa::makeStore(R(8), R(1)), 0x1000),
            ti(isa::makeLoad(R(2), R(9)), 0x2000),
            ti(isa::makeLoad(R(3), R(8)), 0x1000)};
    Relation r = preservedProgramOrder(t, ModelKind::PerLocSC);
    EXPECT_FALSE(r(0, 1));
    EXPECT_TRUE(r(0, 2));
}

TEST(Ppo, ArmRequiresRfMap)
{
    Trace t{ti(isa::makeLoad(R(1), R(8)), 0x1000),
            ti(isa::makeLoad(R(2), R(8)), 0x1000)};
    RfMap rf{InitStore, 3};
    Relation r = preservedProgramOrder(t, ModelKind::ARM, &rf);
    EXPECT_TRUE(r(0, 1));
}

} // namespace
} // namespace gam::model
