/** Unit tests for the cache hierarchy substrate. */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/mem_system.hh"

namespace gam::mem
{
namespace
{

CacheParams
tinyCache(uint32_t size = 1024, uint32_t assoc = 2, uint32_t lat = 2,
          uint32_t mshrs = 2)
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = size;
    p.assoc = assoc;
    p.hitLatency = lat;
    p.mshrs = mshrs;
    return p;
}

TEST(MainMemoryTest, LatencyAndBandwidth)
{
    MainMemory dram(100, 6.4, 64); // 10 cycles per 64B transfer
    Cycle t1 = dram.access(0, false, 0, AccessKind::DemandLoad);
    EXPECT_EQ(t1, 100u);
    // Second access at the same time serialises on the bus.
    Cycle t2 = dram.access(4096, false, 0, AccessKind::DemandLoad);
    EXPECT_EQ(t2, 110u);
    EXPECT_EQ(dram.reads(), 2u);
}

TEST(MainMemoryTest, PostedWrites)
{
    MainMemory dram(100, 6.4, 64);
    Cycle t = dram.access(0, true, 5, AccessKind::Writeback);
    EXPECT_EQ(t, 5u); // the requester does not wait for writes
    EXPECT_EQ(dram.writes(), 1u);
}

TEST(CacheTest, MissThenHit)
{
    MainMemory dram(100, 64.0, 64);
    Cache c(tinyCache(), &dram);
    Cycle miss = c.access(0x100, false, 0, AccessKind::DemandLoad);
    EXPECT_GT(miss, 100u); // went to DRAM
    EXPECT_EQ(c.stats().misses, 1u);
    Cycle hit = c.access(0x108, false, miss, AccessKind::DemandLoad);
    EXPECT_EQ(hit, miss + 2); // same line, hit latency 2
    EXPECT_EQ(c.stats().hits, 1u);
}

TEST(CacheTest, DemandLoadAccounting)
{
    MainMemory dram(10, 64.0, 64);
    Cache c(tinyCache(), &dram);
    c.access(0, false, 0, AccessKind::DemandLoad);
    c.access(64, true, 0, AccessKind::DemandStore);
    EXPECT_EQ(c.stats().demandLoadAccesses, 1u);
    EXPECT_EQ(c.stats().demandLoadMisses, 1u);
    EXPECT_EQ(c.stats().accesses, 2u);
}

TEST(CacheTest, LruEviction)
{
    // 1 KB, 2-way, 64 B lines -> 8 sets; lines 0, 8, 16 map to set 0.
    MainMemory dram(10, 64.0, 64);
    Cache c(tinyCache(), &dram);
    c.access(0 * 64, false, 0, AccessKind::DemandLoad);
    c.access(8 * 64, false, 100, AccessKind::DemandLoad);
    c.access(0 * 64, false, 200, AccessKind::DemandLoad); // refresh 0
    c.access(16 * 64, false, 300, AccessKind::DemandLoad); // evicts 8
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(8 * 64));
    EXPECT_TRUE(c.probe(16 * 64));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(CacheTest, DirtyEvictionWritesBack)
{
    MainMemory dram(10, 64.0, 64);
    Cache c(tinyCache(), &dram);
    c.access(0 * 64, true, 0, AccessKind::DemandStore);   // dirty
    c.access(8 * 64, false, 100, AccessKind::DemandLoad);
    c.access(16 * 64, false, 200, AccessKind::DemandLoad); // evicts 0
    EXPECT_EQ(c.stats().writebacks, 1u);
    EXPECT_EQ(dram.writes(), 1u);
}

TEST(CacheTest, MshrMergesSameLine)
{
    MainMemory dram(100, 64.0, 64);
    Cache c(tinyCache(), &dram);
    Cycle t1 = c.access(0x100, false, 0, AccessKind::DemandLoad);
    Cycle t2 = c.access(0x108, false, 1, AccessKind::DemandLoad);
    EXPECT_EQ(c.stats().mshrMerges, 0u); // second was a fill-hit
    EXPECT_LE(t2, t1 + 2);
}

TEST(CacheTest, MshrLimitDelaysExtraMisses)
{
    MainMemory dram(100, 6400.0, 64);
    Cache c(tinyCache(1024, 2, 2, 2), &dram); // 2 MSHRs
    Cycle a = c.access(0 * 64, false, 0, AccessKind::DemandLoad);
    Cycle b = c.access(1 * 64, false, 0, AccessKind::DemandLoad);
    // Third concurrent miss must wait for an MSHR.
    Cycle d = c.access(2 * 64, false, 0, AccessKind::DemandLoad);
    EXPECT_GE(d, std::min(a, b));
    EXPECT_GE(c.stats().mshrFullStalls, 1u);
}

TEST(CacheTest, ProbeHasNoSideEffects)
{
    MainMemory dram(10, 64.0, 64);
    Cache c(tinyCache(), &dram);
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(MemSystemTest, HierarchyMissPath)
{
    MemSystem sys;
    Cycle t = sys.load(0x1000, 0);
    // L1 miss -> L2 miss -> L3 miss -> DRAM: beyond the DRAM latency.
    EXPECT_GT(t, 200u);
    EXPECT_EQ(sys.l1d().stats().misses, 1u);
    EXPECT_EQ(sys.l2().stats().misses, 1u);
    EXPECT_EQ(sys.l3().stats().misses, 1u);
    // Second access to the same line is an L1 hit.
    Cycle t2 = sys.load(0x1000, t);
    EXPECT_EQ(t2, t + sys.l1d().params().hitLatency);
}

TEST(MemSystemTest, InstAndDataSplit)
{
    MemSystem sys;
    sys.fetch(0x4000'0000, 0);
    EXPECT_EQ(sys.l1i().stats().accesses, 1u);
    EXPECT_EQ(sys.l1d().stats().accesses, 0u);
}

TEST(MemSystemTest, ProbeL1D)
{
    MemSystem sys;
    EXPECT_FALSE(sys.probeL1D(0x2000));
    Cycle t = sys.load(0x2000, 0);
    (void)t;
    EXPECT_TRUE(sys.probeL1D(0x2000));
}

TEST(MemSystemTest, ResetStats)
{
    MemSystem sys;
    sys.load(0x3000, 0);
    sys.resetStats();
    EXPECT_EQ(sys.l1d().stats().accesses, 0u);
}

TEST(MemSystemTest, Table1Defaults)
{
    MemSystemParams p;
    EXPECT_EQ(p.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(p.l1d.assoc, 8u);
    EXPECT_EQ(p.l1d.mshrs, 8u);
    EXPECT_EQ(p.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(p.l2.hitLatency, 12u);
    EXPECT_EQ(p.l3.sizeBytes, 1024u * 1024);
    EXPECT_EQ(p.l3.assoc, 16u);
    EXPECT_EQ(p.l3.hitLatency, 35u);
    EXPECT_EQ(p.dramLatency, 200u);
}

} // namespace
} // namespace gam::mem
