/**
 * @file
 * The model compiler (cat/compile.hh), differentially validated.
 *
 * Three pipelines decide every builtin litmus test under every
 * cat-supported model: the compiled plan, the interpreting evaluator,
 * and the hand-coded axiomatic checker.  They must agree on the full
 * outcome set, and the compiled filter's work accounting must match
 * the interpreter's exactly where the enumeration makes it invariant:
 * the leaf count coCandidates + subtreesSkipped is a property of the
 * candidate space, not of the filter, while coCandidates itself may
 * only *shrink* (the compiled filter installs the epoch-constant
 * from-read edges of init-reading loads at beginRf, so it prunes no
 * later than the interpreter anywhere).
 *
 * Plan introspection pins the shipped models to the passes the
 * compiler is supposed to reach: everything fused, accept() O(1).  A
 * fixed-seed generated-test smoke run uses the compiled engine as the
 * spec against the hand-coded checker.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "axiomatic/checker.hh"
#include "cat/compile.hh"
#include "cat/engine.hh"
#include "cat/parser.hh"
#include "litmus/generator.hh"
#include "litmus/suite.hh"
#include "model/kind.hh"

namespace gam
{
namespace
{

using cat::CatEngine;
using cat::CompiledAxiom;
using model::ModelKind;

constexpr ModelKind kCatModels[] = {ModelKind::SC, ModelKind::TSO,
                                    ModelKind::GAM0, ModelKind::GAM};

/** Enumerate @p test with the given engine mode; stats out-param. */
litmus::OutcomeSet
runCat(const litmus::LitmusTest &test, const cat::CatModel &model,
       CatEngine::Mode mode, axiomatic::CheckerStats *stats = nullptr,
       unsigned threads = 1)
{
    axiomatic::Options options;
    options.searchThreads = threads;
    CatEngine engine(test, model, options, mode);
    litmus::OutcomeSet outcomes = engine.enumerate();
    if (stats)
        *stats = engine.stats();
    return outcomes;
}

TEST(CatCompile, ShippedModelsCompileFullyIncremental)
{
    for (ModelKind kind : kCatModels) {
        SCOPED_TRACE(model::modelName(kind));
        const auto plan =
            cat::compileCatModel(cat::builtinCatModel(kind));

        EXPECT_TRUE(plan->fullyIncremental);
        // Shipped definitions never mention co or fr: every stratum
        // evaluates directly, once per rf epoch, and nothing needs a
        // fold slot (constants fold at the axiom level instead).
        for (const cat::Stratum &s : plan->strata) {
            EXPECT_FALSE(s.fixpoint);
            EXPECT_EQ(s.polarity, cat::Polarity::Independent);
        }
        EXPECT_TRUE(plan->foldExprs.empty());
        EXPECT_EQ(plan->totalSlots, plan->model->slotCount);

        // acyclic ppo | co | (rf \ po) | fr -> fused reachability
        // with two constant parts; the two irreflexive axioms become
        // per-edge guards (fr;po transposed against po, fr;co
        // transposed against co).
        ASSERT_EQ(plan->axioms.size(), 3u);
        const CompiledAxiom &order = plan->axioms[0];
        EXPECT_EQ(order.pass, CompiledAxiom::Pass::FusedAcyclic);
        EXPECT_EQ(order.constParts.size(), 2u);
        EXPECT_TRUE(order.usesCo);
        EXPECT_TRUE(order.usesFr);

        const CompiledAxiom &loadValue = plan->axioms[1];
        EXPECT_EQ(loadValue.pass, CompiledAxiom::Pass::EdgeGuard);
        EXPECT_EQ(loadValue.guardX.kind,
                  CompiledAxiom::Operand::Kind::Fr);
        EXPECT_EQ(loadValue.guardY.kind,
                  CompiledAxiom::Operand::Kind::Const);
        EXPECT_TRUE(loadValue.guardYTransposed);

        const CompiledAxiom &atomicity = plan->axioms[2];
        EXPECT_EQ(atomicity.pass, CompiledAxiom::Pass::EdgeGuard);
        EXPECT_EQ(atomicity.guardX.kind,
                  CompiledAxiom::Operand::Kind::Fr);
        EXPECT_EQ(atomicity.guardY.kind,
                  CompiledAxiom::Operand::Kind::Co);
        EXPECT_TRUE(atomicity.guardYTransposed);
    }
}

TEST(CatCompile, DescribeRendersThePlan)
{
    const auto plan =
        cat::compileCatModel(cat::builtinCatModel(ModelKind::GAM));
    const std::string text = plan->describe();
    EXPECT_NE(text.find("fused-acyclic"), std::string::npos) << text;
    EXPECT_NE(text.find("edge-guard"), std::string::npos) << text;
    EXPECT_NE(text.find("rf \\ po"), std::string::npos) << text;
    EXPECT_NE(text.find("fully incremental"), std::string::npos)
        << text;
}

TEST(CatCompile, OutcomesMatchInterpreterAndCheckerOnAllBuiltins)
{
    for (const litmus::LitmusTest &test : litmus::allTests()) {
        for (ModelKind kind : kCatModels) {
            SCOPED_TRACE(test.name + " under "
                         + model::modelName(kind));
            const cat::CatModel &m = cat::builtinCatModel(kind);

            axiomatic::CheckerStats compiled_stats, interp_stats;
            const litmus::OutcomeSet compiled = runCat(
                test, m, CatEngine::Mode::Compiled, &compiled_stats);
            const litmus::OutcomeSet interp =
                runCat(test, m, CatEngine::Mode::Interpreted,
                       &interp_stats);
            axiomatic::Checker checker(test, kind);
            const litmus::OutcomeSet reference = checker.enumerate();

            EXPECT_EQ(compiled, interp);
            EXPECT_EQ(compiled, reference);

            // Work accounting.  The candidate space is fixed by the
            // test, so the counters that describe *it* must agree
            // exactly; the compiled filter may prune earlier (never
            // later), so the leaves it materializes can only shrink.
            EXPECT_EQ(compiled_stats.rfCandidates,
                      interp_stats.rfCandidates);
            EXPECT_EQ(compiled_stats.valueConsistent,
                      interp_stats.valueConsistent);
            EXPECT_EQ(compiled_stats.accepted, interp_stats.accepted);
            EXPECT_LE(compiled_stats.coCandidates,
                      interp_stats.coCandidates);
            EXPECT_EQ(compiled_stats.coCandidates
                          + compiled_stats.subtreesSkipped,
                      interp_stats.coCandidates
                          + interp_stats.subtreesSkipped);
        }
    }
}

TEST(CatCompile, ParallelSearchMatchesSerial)
{
    for (const char *name : {"dekker", "iriw", "wrc_dep", "mp_fenced"}) {
        const litmus::LitmusTest *test = litmus::findTest(name);
        ASSERT_NE(test, nullptr) << name;
        for (ModelKind kind : kCatModels) {
            SCOPED_TRACE(std::string(name) + " under "
                         + model::modelName(kind));
            const cat::CatModel &m = cat::builtinCatModel(kind);
            const litmus::OutcomeSet serial =
                runCat(*test, m, CatEngine::Mode::Compiled, nullptr,
                       1);
            const litmus::OutcomeSet parallel =
                runCat(*test, m, CatEngine::Mode::Compiled, nullptr,
                       4);
            EXPECT_EQ(serial, parallel);
        }
    }
}

TEST(CatCompile, SccRefinementBeatsGroupCoarsePolarity)
{
    // The parser taints whole `let rec` groups: one co mention makes
    // every member Monotone.  The compiler re-runs the polarity
    // dataflow per Tarjan SCC, so the co-free member here refines
    // back to Independent -- which is what lets the axiom fuse.
    const auto parsed = cat::parseCat("let rec a = (po; a) | po\n"
                                      "and b = (co; b) | co\n"
                                      "acyclic a | co as Ax\n",
                                      "sccref");
    ASSERT_TRUE(parsed.ok()) << parsed.error.toString();
    const auto plan = cat::compileCatModel(*parsed.model);

    EXPECT_TRUE(plan->fullyIncremental);
    // Liveness keeps whole `let rec` groups together, so both
    // recursions get strata -- but as *separate* SCCs with their own
    // refined polarity: a is Independent despite the group taint.
    ASSERT_EQ(plan->strata.size(), 2u);
    int independent = 0, monotone = 0;
    for (const cat::Stratum &s : plan->strata) {
        EXPECT_TRUE(s.fixpoint);
        if (s.polarity == cat::Polarity::Independent)
            ++independent;
        else if (s.polarity == cat::Polarity::Monotone)
            ++monotone;
    }
    EXPECT_EQ(independent, 1);
    EXPECT_EQ(monotone, 1);
    ASSERT_EQ(plan->axioms.size(), 1u);
    EXPECT_EQ(plan->axioms[0].pass,
              CompiledAxiom::Pass::FusedAcyclic);
    EXPECT_EQ(plan->axioms[0].constParts.size(), 1u);
    EXPECT_TRUE(plan->axioms[0].usesCo);
    EXPECT_FALSE(plan->axioms[0].usesFr);

    // And the recursion still evaluates correctly end to end.
    for (const char *name : {"mp", "lb", "corr"}) {
        const litmus::LitmusTest *test = litmus::findTest(name);
        ASSERT_NE(test, nullptr) << name;
        EXPECT_EQ(runCat(*test, *parsed.model,
                         CatEngine::Mode::Compiled),
                  runCat(*test, *parsed.model,
                         CatEngine::Mode::Interpreted))
            << name;
    }
}

TEST(CatCompile, ConstantFoldingInHybridPlans)
{
    // A coherence-dependent definition with an Independent subtree:
    // the axiom cannot fuse (the union part is neither constant nor
    // bare co/fr), so the plan goes hybrid -- and [M]; po; [M] gets a
    // fold slot, evaluated once per rf epoch instead of once per
    // coherence candidate.
    const auto parsed =
        cat::parseCat("let slow = (([M]; po; [M]); co)\n"
                      "acyclic slow | fr as Order\n",
                      "hybrid");
    ASSERT_TRUE(parsed.ok()) << parsed.error.toString();
    const auto plan = cat::compileCatModel(*parsed.model);

    EXPECT_FALSE(plan->fullyIncremental);
    ASSERT_EQ(plan->axioms.size(), 1u);
    EXPECT_EQ(plan->axioms[0].pass, CompiledAxiom::Pass::Partial);
    ASSERT_EQ(plan->foldExprs.size(), 1u);
    EXPECT_EQ(cat::exprToString(*plan->foldExprs[0]),
              "[M]; po; [M]");
    EXPECT_EQ(plan->totalSlots, plan->model->slotCount + 1);

    for (const char *name : {"mp", "lb", "corw1"}) {
        const litmus::LitmusTest *test = litmus::findTest(name);
        ASSERT_NE(test, nullptr) << name;
        EXPECT_EQ(runCat(*test, *parsed.model,
                         CatEngine::Mode::Compiled),
                  runCat(*test, *parsed.model,
                         CatEngine::Mode::Interpreted))
            << name;
    }
}

TEST(CatCompile, FuzzSmokeCompiledEngineAsSpec)
{
    // Fixed-seed generated stream, compiled engine as the spec: every
    // outcome set must equal the hand-coded GAM checker's over the
    // same candidate enumeration.
    constexpr uint64_t kSeed = 20260808;
    constexpr int kTests = 300;
    const cat::CatModel &m = cat::builtinCatModel(ModelKind::GAM);
    litmus::GeneratorOptions gen;
    gen.maxThreads = 3; // keep the smoke run fast; 4-thread parity is
                        // covered by the builtin-suite tests above
    for (int i = 0; i < kTests; ++i) {
        const litmus::LitmusTest test =
            litmus::generateTest(kSeed, uint64_t(i), gen);
        SCOPED_TRACE(test.name);
        const litmus::OutcomeSet compiled =
            runCat(test, m, CatEngine::Mode::Compiled);
        axiomatic::Checker checker(test, ModelKind::GAM);
        EXPECT_EQ(compiled, checker.enumerate());
    }
}

} // namespace
} // namespace gam
