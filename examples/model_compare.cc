/**
 * @file
 * Automatic model differencing: sweep random programs and report
 * behaviors that separate two memory models -- the kind of evidence
 * Section III-E uses to choose between SALdLd and SALdLdARM.
 *
 * Usage:
 *   ./model_compare                 # GAM0 vs GAM, 200 programs
 *   ./model_compare GAM ARM 500     # any two axiomatic models
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "axiomatic/checker.hh"
#include "base/rng.hh"
#include "isa/program.hh"
#include "litmus/test.hh"
#include "litmus/suite.hh"
#include "model/kind.hh"

namespace
{

using namespace gam;
using isa::ProgramBuilder;
using isa::R;
using model::ModelKind;

/** Small random two-location programs (same shape as the test suite's
 *  equivalence generator, biased toward same-address load pairs). */
litmus::LitmusTest
randomTest(uint64_t seed)
{
    Rng rng(seed);
    const int nthreads = 2;
    litmus::LitmusBuilder builder("random_" + std::to_string(seed),
                                  "generated");
    builder.location("a", litmus::LOC_A).location("b", litmus::LOC_B);
    for (int tid = 0; tid < nthreads; ++tid) {
        ProgramBuilder b;
        b.li(R(8), litmus::LOC_A).li(R(9), litmus::LOC_B);
        int next_reg = 1;
        const int ops = 2 + int(rng.range(3));
        for (int i = 0; i < ops; ++i) {
            const isa::Reg loc = rng.chance(2, 3) ? R(8) : R(9);
            switch (rng.range(4)) {
              case 0:
              case 1: // loads dominate: same-address pairs matter here
                b.ld(R(next_reg++), loc);
                break;
              case 2: {
                isa::Reg v = R(next_reg++);
                b.li(v, 1 + int64_t(rng.range(2)));
                b.st(loc, v);
                break;
              }
              default:
                b.fence(isa::FenceKind(rng.range(4)));
                break;
            }
        }
        builder.thread(b.build());
    }
    builder.requireReg(0, R(1), 0);
    builder.expect(ModelKind::GAM, true);
    return builder.done();
}

std::optional<ModelKind>
parseModel(const std::string &name)
{
    for (ModelKind kind : model::axiomaticModels)
        if (model::modelName(kind) == name)
            return kind;
    return std::nullopt;
}

} // namespace

int
main(int argc, char **argv)
{
    ModelKind weak = ModelKind::GAM0;
    ModelKind strong = ModelKind::GAM;
    uint64_t programs = 200;
    if (argc >= 3) {
        auto a = parseModel(argv[1]);
        auto b = parseModel(argv[2]);
        if (!a || !b) {
            std::fprintf(stderr, "unknown model; use SC TSO GAM0 GAM "
                                 "ARM PerLocSC\n");
            return 1;
        }
        weak = *a;
        strong = *b;
    }
    if (argc >= 4)
        programs = std::strtoull(argv[3], nullptr, 0);

    std::printf("differencing %s vs %s over %llu random programs...\n\n",
                model::modelName(weak).c_str(),
                model::modelName(strong).c_str(),
                (unsigned long long)programs);

    uint64_t differing = 0, shown = 0;
    for (uint64_t seed = 0; seed < programs; ++seed) {
        litmus::LitmusTest test = randomTest(seed);
        axiomatic::Checker cw(test, weak);
        axiomatic::Checker cs(test, strong);
        auto ow = cw.enumerate();
        auto os = cs.enumerate();
        if (ow == os)
            continue;
        ++differing;
        if (shown < 3) {
            ++shown;
            std::printf("--- %s distinguishes the models ---\n%s",
                        test.name.c_str(), test.toString().c_str());
            for (const auto &o : ow) {
                if (!os.count(o)) {
                    std::printf("  %s-only: %s\n",
                                model::modelName(weak).c_str(),
                                o.toString().c_str());
                }
            }
            for (const auto &o : os) {
                if (!ow.count(o)) {
                    std::printf("  %s-only: %s\n",
                                model::modelName(strong).c_str(),
                                o.toString().c_str());
                }
            }
            std::printf("\n");
        }
    }
    std::printf("%llu of %llu programs separate %s from %s\n",
                (unsigned long long)differing,
                (unsigned long long)programs,
                model::modelName(weak).c_str(),
                model::modelName(strong).c_str());
    return 0;
}
