/**
 * @file
 * Quickstart: define a litmus test with the builder API, then ask both
 * engines -- the axiomatic checker and the operational explorer --
 * whether a weak behavior is allowed under SC and under GAM.
 *
 * Run: ./quickstart
 */

#include <cstdio>

#include "axiomatic/checker.hh"
#include "harness/decision.hh"
#include "isa/program.hh"
#include "litmus/test.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "operational/sc_machine.hh"

int
main()
{
    using namespace gam;
    using isa::ProgramBuilder;
    using isa::R;
    using model::ModelKind;

    // Dekker / store-buffering (paper Figure 2):
    //   P0: St [a] 1; r1 = Ld [b]     P1: St [b] 1; r2 = Ld [a]
    // Question: can both loads read 0?
    constexpr isa::Addr A = 0x1000, B = 0x1008;

    ProgramBuilder p0, p1;
    p0.li(R(8), A).li(R(9), B)
      .li(R(7), 1).st(R(8), R(7))
      .ld(R(1), R(9));
    p1.li(R(8), A).li(R(9), B)
      .li(R(7), 1).st(R(9), R(7))
      .ld(R(2), R(8));

    litmus::LitmusTest test = litmus::LitmusBuilder("my_dekker", "demo")
        .location("a", A).location("b", B)
        .thread(p0.build()).thread(p1.build())
        .requireReg(0, R(1), 0)
        .requireReg(1, R(2), 0)
        .expect(ModelKind::GAM, true)
        .done();

    std::printf("%s\n", test.toString().c_str());

    for (ModelKind kind : {ModelKind::SC, ModelKind::GAM}) {
        // Engine 1: the axiomatic checker (Section IV-A).
        axiomatic::Checker checker(test, kind);
        bool ax = checker.isAllowed();

        // Engine 2: exhaustive exploration of the abstract machine
        // (Section IV-B).  SC is explored with the GAM machine too --
        // it is sound here because we only compare the condition.
        bool op;
        if (kind == ModelKind::SC) {
            op = false;
            for (const auto &o : operational::exploreAll(
                     operational::ScMachine(test)).outcomes)
                op |= test.conditionMatches(o);
        } else {
            operational::GamOptions opts;
            opts.kind = kind;
            op = false;
            for (const auto &o : operational::exploreAll(
                     operational::GamMachine(test, opts)).outcomes)
                op |= test.conditionMatches(o);
        }

        std::printf("under %-4s: axiomatic says %-9s operational says "
                    "%s\n", model::modelName(kind).c_str(),
                    ax ? "ALLOWED," : "FORBIDDEN,",
                    op ? "ALLOWED" : "FORBIDDEN");
    }

    std::printf("\nGAM allows the r1=r2=0 outcome (all four load/store "
                "reorderings are legal);\nSC forbids it.  Both engines "
                "agree -- that is the paper's equivalence theorem.\n");

    // The invocations above are the engines driven by hand.  Everyday
    // code asks through the unified Decision API instead: one Query,
    // the registry picks a capable engine, and repeated queries are
    // served from the decision cache.
    harness::Query query;
    query.test = &test;
    query.model = ModelKind::GAM;
    query.engine = harness::EngineSelect::Auto;
    const harness::Decision d = harness::decide(query);
    const harness::Decision warm = harness::decide(query);
    std::printf("\ndecide(): %s under GAM via the %s engine "
                "(%llu candidates, %zu outcomes); warm repeat %s from "
                "cache\n",
                d.allowed ? "ALLOWED" : "FORBIDDEN",
                model::engineName(d.engine).c_str(),
                (unsigned long long)d.statesVisited, d.outcomes.size(),
                warm.cacheHit ? "served" : "NOT served");
    return 0;
}
