/**
 * @file
 * Pipeline deep-dive: run one workload under the four evaluated memory
 * models and print the full statistics of each run.
 *
 * Usage:
 *   ./perf_compare                # default workload (histogram)
 *   ./perf_compare late_addr      # any suite workload
 */

#include <cstdio>

#include "base/table.hh"
#include "harness/experiments.hh"

int
main(int argc, char **argv)
{
    using namespace gam;
    using model::ModelKind;

    const std::string name = argc > 1 ? argv[1] : "histogram";
    const auto &spec = workload::workloadByName(name);
    std::printf("workload: %s -- %s\n\n", spec.name.c_str(),
                spec.description.c_str());

    const ModelKind models[] = {ModelKind::GAM, ModelKind::ARM,
                                ModelKind::GAM0, ModelKind::AlphaStar};

    std::vector<harness::RunResult> results;
    for (ModelKind kind : models)
        results.push_back(harness::runOne(spec, kind));

    Table t;
    t.header({"statistic", "GAM", "ARM", "GAM0", "Alpha*"});
    auto row = [&](const char *label, auto get, int precision) {
        std::vector<std::string> cells{label};
        for (const auto &r : results)
            cells.push_back(Table::num(get(r.stats), precision));
        t.row(std::move(cells));
    };
    using S = sim::SimStats;
    row("uPC", [](const S &s) { return s.upc(); }, 4);
    row("cycles", [](const S &s) { return double(s.cycles); }, 0);
    row("committed uops",
        [](const S &s) { return double(s.committedUops); }, 0);
    row("branch mispredicts",
        [](const S &s) { return double(s.branchMispredicts); }, 0);
    row("mem-order squashes",
        [](const S &s) { return double(s.memOrderSquashes); }, 0);
    row("SALdLd kills", [](const S &s) { return double(s.saLdLdKills); },
        0);
    row("SALdLd stalls",
        [](const S &s) { return double(s.saLdLdStalls); }, 0);
    row("store forwards",
        [](const S &s) { return double(s.storeForwards); }, 0);
    row("LL forwards", [](const S &s) { return double(s.llForwards); },
        0);
    row("L1D load misses",
        [](const S &s) { return double(s.l1dLoadMisses); }, 0);
    std::printf("%s", t.render().c_str());

    std::printf("\nThe four models share the whole pipeline; they "
                "differ only in the\nsame-address load-load policy "
                "(kills/stalls) and load-load forwarding\n(Section "
                "V-A).  uPC differences stay within a few percent -- "
                "the paper's\nFigure 18 result.\n");
    return 0;
}
