/**
 * @file
 * Fence-insertion walkthrough: message passing under GAM, showing
 * which fence pairs (and which dependency idioms) forbid the stale
 * read -- reproducing the reasoning of paper Section III-D.
 *
 * Run: ./fence_insertion
 */

#include <cstdio>

#include "axiomatic/checker.hh"
#include "harness/fence_synth.hh"
#include "isa/program.hh"
#include "litmus/suite.hh"
#include "litmus/test.hh"

namespace
{

using namespace gam;
using isa::FenceKind;
using isa::ProgramBuilder;
using isa::R;
using model::ModelKind;

constexpr isa::Addr A = 0x1000, B = 0x1008;

/** Build MP with optional producer/consumer fences. */
litmus::LitmusTest
mp(bool producer_fence, FenceKind pk, bool consumer_fence, FenceKind ck,
   bool artificial_dep)
{
    ProgramBuilder p0;
    p0.li(R(8), A).li(R(9), B).li(R(7), 1);
    p0.st(R(8), R(7));
    if (producer_fence)
        p0.fence(pk);
    p0.st(R(9), R(7));

    ProgramBuilder p1;
    p1.li(R(8), A).li(R(9), B);
    p1.ld(R(1), R(9));
    if (consumer_fence)
        p1.fence(ck);
    if (artificial_dep) {
        // r2 = a + r1 - r1: an address dependency replacing FenceLL
        // (paper Figure 13b).
        p1.add(R(2), R(8), R(1)).sub(R(2), R(2), R(1)).ld(R(3), R(2));
    } else {
        p1.ld(R(3), R(8));
    }

    return litmus::LitmusBuilder("mp_variant", "demo")
        .location("a", A).location("b", B)
        .thread(p0.build()).thread(p1.build())
        .requireReg(1, R(1), 1)
        .requireReg(1, R(3), 0)
        .expect(ModelKind::GAM, true)
        .done();
}

void
check(const char *label, const litmus::LitmusTest &test)
{
    axiomatic::Checker checker(test, ModelKind::GAM);
    std::printf("  %-44s %s\n", label,
                checker.isAllowed() ? "stale read ALLOWED"
                                    : "stale read forbidden");
}

} // namespace

int
main()
{
    std::printf("Message passing under GAM: P0 publishes data then a "
                "flag;\nP1 reads the flag (sees 1) then the data.  Can "
                "the data read be stale (0)?\n\n");

    check("no fences",
          mp(false, FenceKind::SS, false, FenceKind::LL, false));
    check("producer FenceSS only",
          mp(true, FenceKind::SS, false, FenceKind::LL, false));
    check("consumer FenceLL only",
          mp(false, FenceKind::SS, true, FenceKind::LL, false));
    check("FenceSS + FenceLL",
          mp(true, FenceKind::SS, true, FenceKind::LL, false));
    check("FenceSS + FenceSL (wrong consumer fence)",
          mp(true, FenceKind::SS, true, FenceKind::SL, false));
    check("FenceSS + artificial address dependency",
          mp(true, FenceKind::SS, false, FenceKind::LL, true));

    std::printf("\nBoth sides must order their accesses: the producer "
                "needs FenceSS and the\nconsumer either FenceLL or a "
                "(possibly artificial) address dependency --\nexactly "
                "the paper's Figure 13 discussion.\n");

    // The same conclusion, derived automatically.
    std::printf("\nFence synthesis (minimal insertions forbidding the "
                "behavior under GAM):\n");
    for (const char *name : {"mp", "dekker", "lb", "corr"}) {
        const litmus::LitmusTest &t = litmus::testByName(name);
        harness::SynthResult r =
            harness::synthesizeFences(t, ModelKind::GAM);
        std::printf("  %-8s", name);
        if (!r.solved) {
            std::printf("no solution within the bound\n");
            continue;
        }
        if (r.fences.empty()) {
            std::printf("already forbidden\n");
            continue;
        }
        for (size_t i = 0; i < r.fences.size(); ++i)
            std::printf("%s%s", i ? " + " : "",
                        r.fences[i].toString().c_str());
        std::printf("   (%llu queries)\n",
                    (unsigned long long)r.queriesIssued);
    }
    return 0;
}
