/**
 * @file
 * Litmus explorer: enumerate the full outcome set of any suite test
 * under any model, with both engines.
 *
 * Usage:
 *   ./litmus_explorer                 # list available tests
 *   ./litmus_explorer corr            # explore under every model
 *   ./litmus_explorer corr GAM0       # one model only
 */

#include <cstdio>
#include <cstring>

#include "axiomatic/checker.hh"
#include "litmus/suite.hh"
#include "operational/explorer.hh"
#include "operational/gam_machine.hh"
#include "operational/sc_machine.hh"
#include "operational/tso_machine.hh"

namespace
{

using namespace gam;
using model::ModelKind;

void
explore(const litmus::LitmusTest &test, ModelKind kind)
{
    std::printf("--- %s under %s ---\n", test.name.c_str(),
                model::modelName(kind).c_str());

    if (kind != ModelKind::AlphaStar) {
        axiomatic::Checker checker(test, kind);
        auto outcomes = checker.enumerate();
        std::printf("axiomatic   : %zu outcomes\n", outcomes.size());
        for (const auto &o : outcomes) {
            std::printf("  %s%s\n", o.toString().c_str(),
                        test.conditionMatches(o) ? "   <-- condition"
                                                 : "");
        }
    } else {
        std::printf("axiomatic   : (Alpha* has no axiomatic "
                    "definition)\n");
    }

    litmus::OutcomeSet op;
    if (kind == ModelKind::SC) {
        op = operational::exploreAll(operational::ScMachine(test))
                 .outcomes;
    } else if (kind == ModelKind::TSO) {
        op = operational::exploreAll(operational::TsoMachine(test))
                 .outcomes;
    } else if (kind == ModelKind::PerLocSC) {
        std::printf("operational : (per-location SC is a property, "
                    "not a machine)\n\n");
        return;
    } else {
        operational::GamOptions opts;
        opts.kind = kind;
        op = operational::exploreAll(operational::GamMachine(test, opts))
                 .outcomes;
    }
    std::printf("operational : %zu outcomes\n\n", op.size());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("usage: %s <test> [model]\n\navailable tests:\n",
                    argv[0]);
        for (const auto &t : litmus::allTests())
            std::printf("  %-20s %s\n", t.name.c_str(),
                        t.paperRef.c_str());
        std::printf("\nmodels: SC TSO GAM0 GAM ARM Alpha* PerLocSC\n");
        return 0;
    }

    const litmus::LitmusTest *found = litmus::findTest(argv[1]);
    if (!found) {
        std::fprintf(stderr, "unknown test '%s'; available tests:\n",
                     argv[1]);
        for (const auto &t : litmus::allTests())
            std::fprintf(stderr, "  %s\n", t.name.c_str());
        return 1;
    }
    const litmus::LitmusTest &test = *found;
    std::printf("%s\n", test.toString().c_str());

    const ModelKind all[] = {ModelKind::SC, ModelKind::TSO,
                             ModelKind::GAM0, ModelKind::GAM,
                             ModelKind::ARM, ModelKind::AlphaStar};
    if (argc >= 3) {
        for (ModelKind kind : all) {
            if (model::modelName(kind) == argv[2]) {
                explore(test, kind);
                return 0;
            }
        }
        std::fprintf(stderr, "unknown model '%s'\n", argv[2]);
        return 1;
    }
    for (ModelKind kind : all)
        explore(test, kind);
    return 0;
}
